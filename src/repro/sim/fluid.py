"""The fluid (collapsed-window) fast path for steady-state streams.

A netperf RX stream in steady state is metronomic: every burst interval
a tick offers ``int(pps * interval + carry)`` packets, the VF accepts
them into its ring, and once per ITR window the throttle fires one
interrupt that drains everything since the last fire.  Exact simulation
spends one event per tick plus one per fire; for the fig. 15/16 sweeps
that is ~6 events per ITR window, every one of them dominated by
dispatch and object traffic rather than interesting state changes.

:class:`FluidFlow` collapses the *entire* steady-state loop.  While
attached, the flow schedules **no events at all**: the stream's ticks,
the throttle's fires and the guest's interrupt handlers all become
entries in a virtual event queue that is replayed — as flat arithmetic
against the real model objects, in the exact engine's event order — at
*settle points*: measurement boundaries, ITR sample ticks, run end, and
any transition that leaves the fast path.  Each replayed virtual event
bumps ``Simulator.collapsed_events`` so that ``events_executed +
collapsed_events`` equals the exact run's event count.

The replay covers the full §4.1 interrupt chain:

* **ticks** replay ``NetperfStream._tick`` + ``device_receive``'s burst
  arithmetic (the DMA pipe is booked via :meth:`~repro.hw.pcie.\
datapath.PcieDataPath.transfer_at` at the original timestamps) against
  a frozen, fully-posted descriptor ring;
* **fires** replay ``InterruptThrottle._do_fire`` -> MSI-X post ->
  interrupt remap -> the hypervisor's external-interrupt exit charges
  -> vLAPIC injection (HVM) or event-channel upcall (PVM) -> the VF
  ISR's NAPI/app/EOI sequence, writing the same counters, cycle
  charges and float accumulators the exact chain writes, through the
  same live objects (:meth:`VirtualLapic.inject` / ``eoi_write`` are
  called for real, so IRR/ISR state and the fractional APIC-access
  carry stay exact).

**Exactness contract.**  For an eligible flow the collapse is not an
approximation: every counter, cycle charge, latency accumulator and
float operation lands bit-identically to the exact run, so the
:class:`~repro.core.experiment.RunResult` is byte-identical.  The
replay-order argument needs three properties, all enforced as
eligibility gates (:meth:`FluidFlow.try_attach`):

* *per-flow state is disjoint* — one stream per port, per-VM rings,
  meters, apps, vLAPICs and ledger cells, so replaying one flow's
  events contiguously instead of interleaved with other flows touches
  no shared accumulator...
* *...except integer ones* — cycle charges can meet on a shared
  account (two guests pinned to one core both charge ``xen``), so
  every replayed cycle cost must be integer-valued: integer-valued
  float sums are order-independent.  Exit-tracer records only ever
  accumulate their own constant, which is order-independent by count.
* *no observers between settle points* — the null tracer and null
  metrics registry are required, and every event source that could
  read or perturb flow state mid-run either holds a settle hook
  (ITR sample ticks, measurement boundaries, driver stop, device
  reset, ``set_rate``, a second stream attaching) or forces the run
  wholesale-exact before setup (fault campaigns, telemetry).

Within a flow, replay order follows the exact engine's tie-break: a
scheduled fire at time *t* was enqueued at least two burst intervals
before the tick at *t* (the ``MIN_TICKS_PER_WINDOW`` gate), so the
fire's lower sequence number runs first; an *inline* fire (throttle
already past due when a tick requests) replays inside its tick, which
is also where the exact run executes it.

Anything dynamic — a switch reprogramming, a device reset, a rate
change, a second stream on the port — triggers
:meth:`FluidFlow.decollapse`, which replays up to the present,
materializes undrained packets into the real descriptor ring,
re-schedules the real stream tick and any pending throttle fire, and
resumes exact per-event simulation mid-run with no observable seam.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.obs.registry import NULL_REGISTRY
from repro.sim.trace import NULL_TRACER
from repro.vmm.vmexit import VmExitKind

#: Collapsing only pays when an ITR window spans several ticks — and the
#: replay-order proof needs a scheduled fire to predate (in sequence
#: numbers) any tick sharing its timestamp, which holds when the window
#: is at least two burst intervals long.
MIN_TICKS_PER_WINDOW = 3.0

#: Ledger categories, precomputed (mirror the hypervisor's and the
#: virtual LAPIC's own).
_CAT_EXTINT = "exit." + VmExitKind.EXTERNAL_INTERRUPT.value
_CAT_HYPERCALL = "exit." + VmExitKind.HYPERCALL.value
_CAT_APIC_OTHER = "exit." + VmExitKind.APIC_ACCESS_OTHER.value
_CAT_APIC_EOI = "exit." + VmExitKind.APIC_ACCESS_EOI.value


class FluidFlow:
    """One collapsed client->VF stream on an otherwise idle port."""

    #: Minimum throttle-window length, in burst intervals, for the
    #: single-flow replay-order proof (subclasses with a total virtual
    #: event order — creation-stamped — may relax this to 0).
    _min_window = MIN_TICKS_PER_WINDOW

    def __init__(self, bed, guest, stream):
        self.bed = bed
        self.sim = bed.sim
        self.guest = guest
        self.stream = stream
        self.driver = guest.driver
        self.vf = guest.vf
        self.port = guest.port
        self.active = False
        #: Next unapplied tick's absolute time (advances by exactly the
        #: float additions the exact reschedule chain performs).
        self._t_next = 0.0
        #: The stream's fractional-packet carry, owned while collapsed.
        self._carry = 0.0
        #: The virtual image of ``InterruptThrottle._pending``: the
        #: absolute due time of the scheduled fire, or None.
        self._fire_at: Optional[float] = None
        #: Creation stamps for the merged (multi-stream) replay: the
        #: simulated time at which the *currently armed* tick/fire
        #: handle was scheduled in the exact run.  Together with the
        #: group's flow order and the fire-before-tick rank they
        #: reconstruct the engine's sequence-number tie-break.
        self._tick_created = 0.0
        self._fire_created = 0.0
        #: The per-port :class:`FluidPortGroup` when other collapsed
        #: streams share this port (None for a solo flow).
        self.group: Optional["FluidPortGroup"] = None
        #: Frozen ring capacity (device-owned descriptors after refill).
        self._capacity = 0
        #: Ring-accepted packets not yet drained by an interrupt.
        self._backlog = 0
        #: Packets drained by replayed fires since begin(): each one
        #: advanced head (consume), _clean (reap) and tail (rearm) in
        #: the exact run, so decollapse rotates the cursors by this.
        self._drained_total = 0
        #: Accepted-but-undrained ticks: (count, accepted, tick_time).
        self._pending: List[Tuple[int, int, float]] = []
        self._generation = -1
        #: Platform variant: "hvm" / "pvm" / "native"; set at attach.
        self._variant = ""
        self._vlapic = None
        self._remapper = None
        self._eoi_cost = 0.0
        #: What the replayed ISR hands the app: size/protocol of the
        #: drained packets.  The local stream's for single-host flows;
        #: the cluster flow resets these per inbound shape.
        self._deliver_mtu = stream.mtu
        self._deliver_protocol = stream.protocol
        #: The ``try_attach`` gate that refused collapse (diagnostics;
        #: None after a successful attach).
        self.reject_gate: Optional[str] = None

    def _reject(self, gate: str) -> bool:
        """Record which eligibility gate refused this flow."""
        self.reject_gate = gate
        bed = self.bed
        if bed is not None:
            bed.record_fluid_rejection(gate)
        return False

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------
    def try_attach(self) -> bool:
        """Install the flow's hooks if the exactness contract can hold.

        Returns False (leaving the stream fully exact) otherwise.  All
        checks are side-effect free; a refusal names the failing gate in
        :attr:`reject_gate` and the testbed's rejection counters.
        """
        stream = self.stream
        driver = self.driver
        vf = self.vf
        port = self.port
        platform = driver.platform
        domain = driver.domain
        if stream.jitter != 0:
            return self._reject("jitter")
        if stream.pool is None:
            return self._reject("pool")
        # Speed heuristics: every tick should carry packets, and a
        # window should span several ticks (see MIN_TICKS_PER_WINDOW).
        if stream.pps * stream.burst_interval < 1.0:
            return self._reject("sparse_ticks")
        if vf.throttle.interval < self._min_window * stream.burst_interval:
            return self._reject("itr_window")
        if not (vf.enabled and driver.running):
            return self._reject("not_running")
        if port.rx_corrupt_budget != 0:
            return self._reject("rx_corruption")
        # Observers that would see stale state between settle points:
        # any tracer listening on the replayed categories keeps the run
        # exact (per-event trace records carry timestamps, which a
        # batched flush cannot reproduce).  Metrics registries are fine
        # — the replayed instruments are plain accumulators, flushed
        # batched at settle points.
        trace = platform.trace
        if trace.is_enabled("irq") or trace.is_enabled("apic"):
            return self._reject("tracer")
        if port.datapath.trace.is_enabled("dma"):
            return self._reject("tracer")
        # A quiesced throttle is the state the virtual image assumes.
        if vf.throttle._pending is not None:
            return self._reject("throttle_pending")
        # The replayed ISR is the 2.6.28 shape: no per-interrupt MSI-X
        # mask/unmask emulation (§5.1's 2.6.18 guests stay exact).
        if (domain.is_hvm and not platform.is_native
                and domain.kernel.masks_msi_per_interrupt):
            return self._reject("msi_mask_emulation")
        # The interrupt plumbing the fire replay reproduces must be in
        # its steady configured state: vector bound, MSI-X entry
        # programmed and unmasked.
        vector = driver.rx_vector
        if vector is None or platform.vectors.handler(vector) is None:
            return self._reject("vector_unbound")
        from repro.devices.igb82576 import VECTOR_RXTX
        entry = vf.msix.table[VECTOR_RXTX]
        if entry.masked or entry.message is None:
            return self._reject("msix_entry")
        if entry.message.vector != vector:
            return self._reject("msix_entry")
        if platform.is_native:
            self._variant = "native"
        else:
            if platform.vectors.owner(vector) != domain.id:
                return self._reject("vector_owner")
            if domain.id not in platform.domains:
                return self._reject("domain_gone")
            # The remap the exact chain performs must succeed (a
            # missing IRTE would *block* the interrupt — not eligible).
            rid = vf.pci.rid
            remapper = platform.intr_remapper
            if rid is None or not remapper.entries_for(rid):
                return self._reject("irte_missing")
            if remapper._entries.get((rid, vector)) is None:
                return self._reject("irte_missing")
            self._remapper = remapper
            if domain.is_hvm:
                self._variant = "hvm"
                self._vlapic = platform.vlapic(domain)
                opts = platform.opts
                if opts.eoi_acceleration:
                    cost = driver.costs.eoi_accelerated_cycles
                    if opts.eoi_instruction_check:
                        cost += driver.costs.eoi_instruction_check_cycles
                else:
                    cost = driver.costs.eoi_emulate_cycles
                self._eoi_cost = cost
            elif domain.is_pvm:
                self._variant = "pvm"
            else:
                return self._reject("domain_kind")
        if not self._integral_costs():
            return self._reject("nonintegral_costs")
        route_gate = self._route_gate()
        if route_gate is not None:
            return self._reject(route_gate)
        if not self._ring_clean_and_mapped():
            return self._reject("ring_dirty")
        self._generation = port.switch.generation
        self.reject_gate = None
        stream._fluid = self
        driver._fluid = self
        # Adaptive policies rewrite VTEITR at sample ticks (which are
        # settle points); the register hook tells us so a window that
        # shrank below the replay-order proof leaves the fast path at
        # the instant of the write.
        vf.fluid_listener = self.interval_reprogrammed
        return True

    def _route_gate(self) -> Optional[str]:
        """Where must the stream's packets land for the replay to be
        right?  For the single-host RX flow: on this stream's own VF —
        no flooding, no uplink, no PF.  Subclasses with a different
        wire-side replay (the cluster TX flow) override this."""
        if self.port.switch.resolve_unicast(
                self.stream.dst, self.stream.vlan) != self.vf.function_index:
            return "switch_dst"
        return None

    def _integral_costs(self) -> bool:
        """Every replayed cycle charge must be an integer-valued float:
        integer sums are order-exact, so grouping one flow's charges
        contiguously cannot move a shared account (e.g. two guests
        pinned to one core charging ``xen``) off the exact run's value.
        """
        costs = self.driver.costs
        checked = [
            costs.guest_cycles_per_interrupt,
            costs.guest_cycles_per_packet,
        ]
        if self._variant != "native":
            checked.append(costs.external_interrupt_exit_cycles)
        if self._variant == "hvm":
            checked.append(costs.other_apic_access_cycles)
            opts = self.driver.platform.opts
            if opts.eoi_acceleration:
                checked.append(costs.eoi_accelerated_cycles)
                if opts.eoi_instruction_check:
                    checked.append(costs.eoi_instruction_check_cycles)
            else:
                checked.append(costs.eoi_emulate_cycles)
        elif self._variant == "pvm":
            checked.append(costs.event_channel_notify_cycles)
            checked.append(costs.pvm_syscall_surcharge_per_packet)
        return all(float(c).is_integer() for c in checked)

    def _ring_clean_and_mapped(self) -> bool:
        """The ring must be fully posted and clean (the post-probe
        steady state the frozen-cursor model assumes), with every slot's
        buffer IOMMU-mapped writable (so the exact path would never
        fault)."""
        ring = self.vf.rx_ring
        size = ring.size
        if ring.head != ring._clean:
            return False
        if (ring.tail - ring.head) % size != size - 1:
            return False
        if any(slot.done for slot in ring.slots):
            return False
        iommu = self.port.iommu
        if iommu is not None:
            table = iommu._contexts.get(self.vf.pci.rid)
            if table is None:
                return False
            lookup = table._entries.get
            for slot in ring.slots:
                entry = lookup(slot.buffer_addr >> 12)
                if entry is None or not entry[1]:
                    return False
        return True

    def _still_valid(self) -> bool:
        """The cheap revalidation of the dynamic gates, run at every
        settle point.  In eligible scenarios everything that could flip
        one of these flips it through a hooked path (which decollapses
        at the instant of the change); this check is the backstop."""
        return (self.port.switch.generation == self._generation
                and self.vf.enabled
                and self.driver.running
                and self.port.rx_corrupt_budget == 0)

    # ------------------------------------------------------------------
    # lifecycle (driven by NetperfStream.start/stop)
    # ------------------------------------------------------------------
    def begin(self) -> bool:
        """Collapse from the stream's start; False falls back to exact.

        Schedules nothing: from here until the next settle point the
        flow exists only as the virtual clock pair (next tick, pending
        fire).
        """
        if self.active:
            return True
        if not self._still_valid() or not self._ring_clean_and_mapped():
            return False
        # The ITR may have been reprogrammed (AIC) since attach; a
        # window too short for the replay-order proof stays exact.
        if (self.vf.throttle.interval
                < self._min_window * self.stream.burst_interval):
            return False
        group = self.group
        if group is not None and not group.admits(self):
            group.evict()
            return False
        ring = self.vf.rx_ring
        self.active = True
        self._carry = self.stream._carry
        self._backlog = 0
        self._drained_total = 0
        self._pending.clear()
        self._fire_at = None
        self._capacity = (ring.tail - ring.head) % ring.size
        self._t_next = self.sim.now + self.stream.burst_interval
        self._tick_created = self.sim.now
        if group is not None:
            group.joined(self)
        return True

    # ------------------------------------------------------------------
    # tick arithmetic (replays NetperfStream._tick's float operations)
    # ------------------------------------------------------------------
    def _next_tick(self) -> Tuple[int, float]:
        stream = self.stream
        quota = stream.pps * stream.burst_interval
        quota += self._carry
        count = int(quota)
        self._carry = quota - count
        tick_time = self._t_next
        self._t_next = tick_time + stream.burst_interval
        # The reschedule: the next tick's handle is created *now*.
        self._tick_created = tick_time
        return count, tick_time

    def _apply_tick(self, count: int, tick_time: float) -> int:
        """One tick's books: stream, wire, DMA pipe, VF statistics."""
        if count <= 0:
            return 0
        stream = self.stream
        stream.sent.value += count
        stream.sent_bytes.value += count * stream.mtu
        self.port.fluid_wire_receive(count, count * stream.mtu, tick_time)
        accepted = count
        room = self._capacity - self._backlog
        if accepted > room:
            accepted = room
        self.vf.fluid_receive(count, accepted, accepted * stream.mtu)
        if accepted > 0:
            self._backlog += accepted
            self._pending.append((count, accepted, tick_time))
        return accepted

    # ------------------------------------------------------------------
    # the virtual event loop
    # ------------------------------------------------------------------
    def _advance(self, limit: float, inclusive: bool) -> None:
        """Replay the flow's virtual events up to ``limit``.

        Merges the tick clock and the pending-fire clock in the exact
        engine's order: at equal timestamps the scheduled fire runs
        first (its handle predates the tick's by at least one burst
        interval — see MIN_TICKS_PER_WINDOW).  Each replayed virtual
        event counts once in ``collapsed_events``; a fire that the
        exact run executes *inline* within a tick replays inside that
        tick and adds nothing extra.

        Dispatches to the batched loop when its extra preconditions
        hold (the overwhelmingly common case), else to the generic
        statement-for-statement replay.  When other collapsed streams
        share the port, the whole group advances together in merged
        order (shared DMA-pipe bookings must interleave exactly).
        """
        group = self.group
        if group is not None and group.needs_merge():
            group.advance(limit, inclusive)
            return
        if self._variant == "hvm":
            # The batched loop assumes each interrupt's LAPIC cycle is
            # closed (fire -> ack -> EOI returns the IRR/ISR to empty).
            # A stray in-service or pending vector (e.g. a mailbox
            # doorbell caught mid-flight at decollapse) breaks that, so
            # replay it generically.
            lapic = self.driver.domain.lapic
            vector = self.driver.rx_vector
            if (lapic._irr != 0 or lapic._isr != 0
                    or (lapic.tpr >> 4) >= (vector >> 4)):
                self._advance_generic(limit, inclusive)
                return
        self._advance_bulk(limit, inclusive)

    def _advance_generic(self, limit: float, inclusive: bool) -> None:
        """The unbatched replay: one method call per virtual event."""
        sim = self.sim
        while True:
            t_fire = self._fire_at
            t_tick = self._t_next
            if t_fire is not None and t_fire <= t_tick:
                if t_fire < limit or (inclusive and t_fire == limit):
                    self._fire_at = None
                    self._replay_fire(t_fire)
                    sim.collapsed_events += 1
                    continue
                return
            if t_tick < limit or (inclusive and t_tick == limit):
                count, tick_time = self._next_tick()
                if self._apply_tick(count, tick_time) > 0:
                    self._replay_request(tick_time)
                sim.collapsed_events += 1
                continue
            return

    def _advance_bulk(self, limit: float, inclusive: bool) -> None:
        """The batched replay loop.

        Identical arithmetic to the generic path, restructured for
        speed: all hot state lives in locals, and every *integer*
        accumulator (packet counts, event counts, cycle charges — the
        eligibility gates force integral costs) is summed locally and
        flushed once at the end.  Integer-valued float sums are
        associative, so the flush lands bit-identically to the exact
        run's per-event additions.  Float state that is genuinely
        order-sensitive — the DMA pipe's busy horizon, the stream
        carry, the vLAPIC's fractional access carry, the app's latency
        accumulators — is still evolved per virtual event, inline.
        """
        stream = self.stream
        driver = self.driver
        domain = driver.domain
        costs = driver.costs
        vf = self.vf
        throttle = vf.throttle
        napi = driver.napi
        app = driver.app
        datapath = self.port.datapath
        variant = self._variant
        mtu = stream.mtu
        protocol = stream.protocol
        budget = napi.budget

        # --- hoisted per-event state -----------------------------------
        bi = stream.burst_interval
        pps_bi = stream.pps * bi
        carry = self._carry
        t_next = self._t_next
        fire_at = self._fire_at
        has_fire = fire_at is not None
        tick_created = self._tick_created
        fire_created = self._fire_created
        interval = throttle.interval
        last_fired = throttle._last_fired
        capacity = self._capacity
        backlog = self._backlog
        pending = self._pending
        busy = datapath._busy_until
        eff = datapath.effective_bps
        intr_cycles = costs.guest_cycles_per_interrupt
        pkt_cycles = costs.guest_cycles_per_packet
        if domain.is_pvm:
            pkt_cycles += costs.pvm_syscall_surcharge_per_packet
        if variant == "hvm":
            vlapic = self._vlapic
            vl_carry = vlapic._carry
            oap = costs.other_apic_accesses_per_interrupt
        metrics_live = driver.platform.metrics is not NULL_REGISTRY
        batch_sizes: List[int] = []

        # --- batched integer accumulators ------------------------------
        collapsed = 0
        n_ticks = 0          # ticks that carried packets (DMA bookings)
        total_count = 0      # packets offered
        total_acc = 0        # packets accepted into the ring
        n_fires = 0
        drained = 0          # packets drained by fires
        polls = 0
        exhausted = 0
        app_accepted = 0     # packets the app took (cycle charges)
        n_apic_other = 0     # HVM: non-EOI APIC accesses

        while True:
            run_fire = False
            scheduled = False
            if has_fire and fire_at <= t_next:
                if fire_at < limit or (inclusive and fire_at == limit):
                    t = fire_at
                    has_fire = False
                    run_fire = True
                    scheduled = True
                else:
                    break
            elif t_next < limit or (inclusive and t_next == limit):
                # --- one tick (NetperfStream._tick + device_receive) ---
                quota = pps_bi + carry
                count = int(quota)
                carry = quota - count
                t = t_next
                t_next = t + bi
                tick_created = t
                collapsed += 1
                if count > 0:
                    tb = count * mtu
                    # PcieDataPath.transfer_at, inlined.
                    start = busy if busy > t else t
                    busy = start + tb * 8 / eff
                    n_ticks += 1
                    total_count += count
                    accepted = count
                    room = capacity - backlog
                    if accepted > room:
                        accepted = room
                    total_acc += accepted
                    if accepted > 0:
                        backlog += accepted
                        pending.append((count, accepted, t))
                        # InterruptThrottle.request, inlined.
                        if not has_fire:
                            due = last_fired + interval
                            if t >= due:
                                run_fire = True  # inline fire (no event)
                            else:
                                fire_at = due
                                has_fire = True
                                fire_created = t
            else:
                break
            if run_fire:
                # --- one interrupt (fire -> deliver -> ISR -> EOI) -----
                if scheduled:
                    # A scheduled fire was its own event in the exact
                    # run; an inline fire ran inside its tick's event.
                    collapsed += 1
                last_fired = t
                n_fires += 1
                count = backlog
                segments = pending
                pending = []
                backlog = 0
                drained += count
                if metrics_live:
                    batch_sizes.append(count)
                full = count // budget
                polls += full + 1
                exhausted += full
                if variant == "hvm":
                    # VirtualLapic.inject's fractional access carry.
                    vl_carry += oap
                    accesses = int(vl_carry)
                    vl_carry -= accesses
                    n_apic_other += accesses
                if count:
                    app_accepted += app.deliver_fluid(segments, count, t,
                                                      mtu, protocol)

        # --- flush ------------------------------------------------------
        self._carry = carry
        self._t_next = t_next
        self._fire_at = fire_at if has_fire else None
        self._backlog = backlog
        self._pending = pending
        self._tick_created = tick_created
        self._fire_created = fire_created
        self.sim.collapsed_events += collapsed
        if n_ticks:
            stream.sent.value += total_count
            stream.sent_bytes.value += total_count * mtu
            self.port.wire_rx_packets += total_count
            datapath._busy_until = busy
            datapath.transferred_bytes.value += total_count * mtu
            datapath.transfers.value += n_ticks
            vf.rx_offered += total_count
            vf.rx_packets += total_acc
            vf.rx_bytes += total_acc * mtu
            if total_count != total_acc:
                vf.rx_no_desc_drops += total_count - total_acc
            vf.rx_ring.completed += total_acc
            iommu = self.port.iommu
            if iommu is not None:
                iommu.translations += total_acc
        if n_fires:
            throttle._last_fired = last_fired
            throttle.fired += n_fires
            vf.msix.interrupts_posted += n_fires
            vf.rx_ring.posted += drained
            self._drained_total += drained
            napi.polls += polls
            napi.packets += drained
            napi.exhausted_polls += exhausted
            driver.interrupts_handled += n_fires
            driver.rx_meter._count += drained
            if metrics_live:
                # Registry instruments are plain accumulators (no
                # timestamps), so the batched flush lands identically
                # to the per-interrupt increments of the exact ISR.
                driver._m_interrupts.value += n_fires
                driver._m_rx_pkts.value += drained
                m_batch = driver._m_batch
                for size in batch_sizes:
                    m_batch.add(size)
            guest_cycles = (n_fires * intr_cycles
                            + pkt_cycles * app_accepted)
            core = domain.machine.core(domain.home_core())
            core.charge(domain.account_label, guest_cycles)
            domain.cycles_consumed += guest_cycles
            if variant != "native":
                platform = driver.platform
                tracer = platform.tracer
                ledger = platform.ledger
                name = domain.name
                hyper_cycles = 0.0
                cost = costs.external_interrupt_exit_cycles
                rec = tracer._records[VmExitKind.EXTERNAL_INTERRUPT]
                rec.count += n_fires
                rec.cycles += n_fires * cost
                ledger.charge(name, _CAT_EXTINT, n_fires * cost,
                              count=n_fires)
                hyper_cycles += n_fires * cost
                self._remapper.remapped += n_fires
                if variant == "hvm":
                    vlapic._carry = vl_carry
                    if n_apic_other:
                        cost = costs.other_apic_access_cycles
                        rec = tracer._records[VmExitKind.APIC_ACCESS_OTHER]
                        rec.count += n_apic_other
                        rec.cycles += n_apic_other * cost
                        ledger.charge(name, _CAT_APIC_OTHER,
                                      n_apic_other * cost,
                                      count=n_apic_other)
                        hyper_cycles += n_apic_other * cost
                    cost = self._eoi_cost
                    rec = tracer._records[VmExitKind.APIC_ACCESS_EOI]
                    rec.count += n_fires
                    rec.cycles += n_fires * cost
                    ledger.charge(name, _CAT_APIC_EOI, n_fires * cost,
                                  count=n_fires)
                    hyper_cycles += n_fires * cost
                else:
                    cost = costs.event_channel_notify_cycles
                    rec = tracer._records[VmExitKind.HYPERCALL]
                    rec.count += n_fires
                    rec.cycles += n_fires * cost
                    ledger.charge(name, _CAT_HYPERCALL, n_fires * cost,
                                  count=n_fires)
                    hyper_cycles += n_fires * cost
                core.charge("xen", hyper_cycles)

    def _replay_request(self, now: float) -> None:
        """``InterruptThrottle.request`` against the virtual pending
        slot: fire inline when past due, else arm the virtual timer."""
        if self._fire_at is not None:
            return
        throttle = self.vf.throttle
        due = throttle._last_fired + throttle.interval
        if now >= due:
            self._replay_fire(now)
        else:
            self._fire_at = due
            self._fire_created = now

    def _replay_fire(self, now: float) -> None:
        """One interrupt, start to finish, as flat arithmetic.

        Statement-for-statement this is ``InterruptThrottle._do_fire``
        -> ``MsixCapability._post`` -> ``Xen.deliver_msi`` (or the
        native straight-through) -> ``VfDriver._isr``, with ``now``
        standing in for ``sim.now`` and the null-tracer/null-registry
        calls elided (the eligibility gates guarantee they are null).
        """
        driver = self.driver
        domain = driver.domain
        costs = driver.costs
        throttle = self.vf.throttle
        # The throttle's own state stays live so a decollapse (or the
        # ITR floor logic) sees exactly what the exact run would.
        throttle._last_fired = now
        throttle.fired += 1
        self.vf.msix.interrupts_posted += 1
        variant = self._variant
        if variant != "native":
            platform = driver.platform
            self._remapper.remapped += 1
            cost = costs.external_interrupt_exit_cycles
            platform.tracer.record(VmExitKind.EXTERNAL_INTERRUPT, cost)
            platform.ledger.charge(domain.name, _CAT_EXTINT, cost)
            domain.charge_hypervisor(cost)
            if variant == "hvm":
                # The real device model: IRR/ISR bits, the fractional
                # APIC-access carry and its charges all evolve in place.
                self._vlapic.inject(driver.rx_vector)
            else:
                notify = costs.event_channel_notify_cycles
                platform.tracer.record(VmExitKind.HYPERCALL, notify)
                platform.ledger.charge(domain.name, _CAT_HYPERCALL, notify)
                domain.charge_hypervisor(notify)
        # --- VfDriver._isr ---
        driver.interrupts_handled += 1
        driver._m_interrupts.value += 1
        domain.charge_guest(costs.guest_cycles_per_interrupt)
        segments = self._pending
        count = self._backlog
        self._pending = []
        self._backlog = 0
        # The rearm mirror: reaped descriptors return to the device.
        self.vf.rx_ring.posted += count
        self._drained_total += count
        # poll_all arithmetic: full budget-sized polls plus the final
        # short one (which ends the softirq loop).
        napi = driver.napi
        full = count // napi.budget
        napi.polls += full + 1
        napi.packets += count
        napi.exhausted_polls += full
        if count:
            driver.rx_meter.add(count)
            driver._m_rx_pkts.value += count
            driver._m_batch.add(count)
            accepted = driver.app.deliver_fluid(
                segments, count, now, self._deliver_mtu,
                self._deliver_protocol)
            cycles = costs.guest_cycles_per_packet
            if domain.is_pvm:
                cycles += costs.pvm_syscall_surcharge_per_packet
            domain.charge_guest(cycles * accepted)
        if variant == "hvm":
            self._vlapic.eoi_write()

    # ------------------------------------------------------------------
    # settle points
    # ------------------------------------------------------------------
    def settle(self) -> None:
        """Catch up through the present, *inclusively*: the engine's
        ``run(until)`` horizon is inclusive, so at a run boundary every
        virtual event with time <= now has executed in the exact run.
        Undrained segments stay pending — their packets sit unreaped in
        the exact run's ring too."""
        if not self.active:
            return
        if not self._still_valid():
            self.decollapse()
            return
        self._advance(self.sim.now, inclusive=True)

    def settle_strict(self) -> None:
        """Catch up to — but not through — the present.  For hooks at
        the top of real events whose handles predate any same-time
        virtual event (the ITR sample tick, scheduled a full period
        ago): the exact run executes that event *before* equal-time
        ticks or fires."""
        if not self.active:
            return
        if not self._still_valid():
            self.decollapse()
            return
        self._advance(self.sim.now, inclusive=False)

    def interval_reprogrammed(self, interval: float) -> None:
        """A VTEITR write is about to land (the register hook calls
        this *before* ``set_interval``).  The open window replays
        first, under the outgoing interval — the one its virtual fires
        ran with in the exact engine; adaptive sample ticks already
        settled strictly, so for them this is a no-op.  Future replayed
        ``request``\\ s read the throttle live and pick up the new value
        automatically — but a window shorter than the replay-order
        proof allows (see ``MIN_TICKS_PER_WINDOW``) must leave the fast
        path *now*, while the exact and collapsed timelines still
        agree."""
        if not self.active:
            return
        self.settle_strict()
        if not self.active:
            return
        if interval < self._min_window * self.stream.burst_interval:
            self.decollapse()

    # ------------------------------------------------------------------
    # leaving the fast path
    # ------------------------------------------------------------------
    def decollapse(self) -> None:
        """Fall back to exact per-event simulation, seamlessly.

        Replays every virtual event an exact run would already have
        executed (strictly before now), materializes the undrained
        packets into the real descriptor ring, hands the carry back to
        the stream, re-schedules its exact ``_tick`` chain and re-arms
        the real throttle timer if a fire was pending.
        """
        if not self.active:
            return
        group = self.group
        if group is not None and group.needs_merge():
            # Any member leaving the fast path takes the whole port
            # with it: the remaining members' lazy DMA bookings would
            # interleave with this stream's now-exact events.
            group.decollapse_all()
            return
        self.active = False
        self._advance(self.sim.now, inclusive=False)
        self._finish_decollapse()

    def _finish_decollapse(self) -> None:
        """Materialize state and re-arm the real timers (the replay up
        to the present must already have run)."""
        sim = self.sim
        self._materialize()
        stream = self.stream
        stream._carry = self._carry
        if stream._running:
            stream._tick_handle = sim.schedule_at(self._t_next, stream._tick)
        throttle = self.vf.throttle
        if self._fire_at is not None and throttle._pending is None:
            throttle._pending = sim.schedule_at(self._fire_at,
                                                throttle._do_fire)
        self._fire_at = None

    def _materialize(self) -> None:
        """Turn pending segments into real ring occupancy."""
        stream = self.stream
        ring = self.vf.rx_ring
        pool = stream.pool
        # Every drained packet advanced head (consume), _clean (reap)
        # and tail (rearm) once in the exact run.  Slot programming is
        # position-fixed and reaped slots are clean, so rotating the
        # cursors is the whole difference.
        spin = self._drained_total & ring._mask
        ring.head = (ring.head + spin) & ring._mask
        ring.tail = (ring.tail + spin) & ring._mask
        ring._clean = (ring._clean + spin) & ring._mask
        self._drained_total = 0
        total = 0
        for _count, accepted, tick_time in self._pending:
            if accepted <= 0:
                continue
            burst = pool.acquire_burst(accepted, stream.src, stream.dst,
                                       stream.mtu, stream.vlan,
                                       stream.protocol, stream.flow_id,
                                       tick_time)
            for packet in burst:
                ring.consume(packet)
            total += accepted
        # fluid_receive counted these completions at tick time and
        # consume() just recounted them.
        ring.completed -= total
        self._pending.clear()
        self._backlog = 0


class FluidPortGroup:
    """Merged replay for several collapsed streams sharing one port.

    Per-flow state (rings, meters, apps, vLAPICs, ledger cells) is
    disjoint, but the port's DMA pipe is not: its busy horizon evolves
    per booking, so the flows' virtual events must replay in the exact
    engine's global order, not flow-by-flow.  The group merges its
    members' virtual clocks under the key ``(time, creation stamp,
    begin index, fire-before-tick rank)``:

    * handles created at different simulated times compare by creation
      stamp (the engine's seq counter is monotone across event
      execution, and events execute in time order);
    * at equal stamps, the *creating* events themselves ran in begin
      order (inductively — see :meth:`admits`), so begin index is the
      tie-break;
    * within one tick event the sink runs before the reschedule
      (``NetperfStream._tick``), so a fire armed there predates the
      next tick handle — the final rank.

    The induction needs the members phase-locked (equal burst
    intervals, tick clocks armed together at a common instant), which
    :meth:`admits` enforces at every ``begin``.
    """

    def __init__(self, bed, port):
        self.bed = bed
        self.port = port
        #: Attach-ordered members (the eviction set).
        self.members: List[FluidFlow] = []
        #: Begin-ordered active members; list index reconstructs the
        #: exact engine's handle-creation order.
        self._order: List[FluidFlow] = []
        #: Once evicted, the port's streams run exact; later streams
        #: must not collapse beside them.
        self.dead = False

    def add(self, flow: FluidFlow) -> None:
        self.members.append(flow)
        flow.group = self
        if flow.active:
            # Already begun before the group existed (the port's second
            # stream arrived mid-run): it must be visible to admits()
            # and to the merged replay from this point on.
            self.joined(flow)

    def joined(self, flow: FluidFlow) -> None:
        if flow not in self._order:
            self._order.append(flow)

    def needs_merge(self) -> bool:
        """More than one active member: replay must interleave."""
        seen = 0
        for flow in self._order:
            if flow.active:
                seen += 1
                if seen > 1:
                    return True
        return False

    def admits(self, flow: FluidFlow) -> bool:
        """May ``flow`` begin collapsing alongside the active members?

        Sound when the group is phase-locked: identical burst
        intervals, every active tick clock armed at this same instant,
        no fire in flight — exactly the state at a common setup-time
        start.  A stream joining mid-window would need the engine's
        live sequence numbers to order against, so the whole port
        falls back to exact instead (:meth:`evict`).
        """
        now = flow.sim.now
        bi = flow.stream.burst_interval
        for member in self._order:
            if member is flow or not member.active:
                continue
            if (member.stream.burst_interval != bi
                    or member._t_next != now + bi
                    or member._tick_created != now
                    or member._fire_at is not None):
                return False
        return True

    # ------------------------------------------------------------------
    # the merged virtual event loop
    # ------------------------------------------------------------------
    def advance(self, limit: float, inclusive: bool) -> None:
        actives = [flow for flow in self._order if flow.active]
        for flow in actives:
            if not flow._still_valid():
                self.decollapse_all()
                return
        self._advance_members(actives, limit, inclusive)

    def _advance_members(self, actives: List[FluidFlow], limit: float,
                         inclusive: bool) -> None:
        if not actives:
            return
        sim = actives[0].sim
        while True:
            best = None
            best_key = None
            for idx, flow in enumerate(actives):
                fire_at = flow._fire_at
                if fire_at is not None:
                    key = (fire_at, flow._fire_created, idx, 0)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = flow
                key = (flow._t_next, flow._tick_created, idx, 1)
                if best_key is None or key < best_key:
                    best_key = key
                    best = flow
            t = best_key[0]
            if not (t < limit or (inclusive and t == limit)):
                return
            if best_key[3] == 0:
                best._fire_at = None
                best._replay_fire(t)
            else:
                count, tick_time = best._next_tick()
                if best._apply_tick(count, tick_time) > 0:
                    best._replay_request(tick_time)
            sim.collapsed_events += 1

    # ------------------------------------------------------------------
    # leaving the fast path
    # ------------------------------------------------------------------
    def decollapse_all(self) -> None:
        """Take every active member exact together.

        One member's exact events would interleave with the others'
        lazy DMA bookings, so a port group only ever leaves the fast
        path whole: replay all members (merged) up to now, then
        materialize and re-arm each.
        """
        actives = [flow for flow in self._order if flow.active]
        if not actives:
            return
        sim = actives[0].sim
        for flow in actives:
            flow.active = False
        self._advance_members(actives, sim.now, inclusive=False)
        for flow in actives:
            flow._finish_decollapse()
        self._order = [flow for flow in self._order if flow.active]

    def evict(self) -> None:
        """Decollapse everything and unhook every member for good —
        a stream the group cannot admit arrived, so the port's streams
        (current and future) all run exact."""
        self.dead = True
        self.decollapse_all()
        bed = self.bed
        for flow in self.members:
            flow.group = None
            if flow.stream._fluid is flow:
                flow.stream._fluid = None
            if getattr(flow.driver, "_fluid", None) is flow:
                flow.driver._fluid = None
            if flow.vf.fluid_listener == flow.interval_reprogrammed:
                flow.vf.fluid_listener = None
            if bed is not None:
                bed.record_fluid_rejection("port_evicted")
        self.members.clear()
        self._order.clear()


class FluidLoopbackFlow(FluidFlow):
    """A collapsed intra-port stream: guest->VF (fig. 13) or dom0->VF
    through the PF (fig. 10).

    The exact chain has three interleaved event kinds on one flow: the
    sender's burst ticks (``NetperfStream._tick`` -> ``transmit`` ->
    ``hw_transmit`` -> ``route_transmit``, booking two PCIe crossings
    per packet), the per-packet internal-loopback DMA completions
    (``_deliver_internal`` -> ``device_receive`` on the receiving VF),
    and the receiver's throttle fires.  All three become virtual
    events ordered by ``(time, flow-local virtual seq)``: the virtual
    seq counter is bumped at every virtual *schedule* in the same
    order the exact engine hands out handle sequence numbers (the
    flow's events touch no other event sources — the port carries this
    one stream), so the merge is a total order and the
    ``MIN_TICKS_PER_WINDOW`` fire-before-tick argument is unnecessary:
    ``_min_window`` relaxes to 0, which also lets the receiver's
    adaptive-ITR policy reprogram freely between samples.
    """

    _min_window = 0.0

    def __init__(self, bed, receiver, stream, sender_domain, tx_function,
                 tx_driver):
        super().__init__(bed, receiver, stream)
        self.sender_domain = sender_domain
        self.tx = tx_function
        self.tx_driver = tx_driver
        #: In-flight loopback DMA completions: (finish, virtual seq,
        #: tick time), appended in creation order — which is finish
        #: order, since the pipe serializes.
        self._completions: Deque[Tuple[float, int, float]] = deque()
        #: The flow-local stand-in for engine handle seq numbers.
        self._cseq = 1
        self._tick_cseq = 0
        self._fire_cseq = 0

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------
    def try_attach(self) -> bool:
        tx = self.tx
        stream = self.stream
        # The transmit-side gates (all side-effect free): the replay
        # assumes every packet passes anti-spoof and the rate limiter
        # and reaches route_transmit.
        if not self.tx_driver.running:
            return self._reject("tx_not_running")
        if not tx.enabled:
            return self._reject("tx_disabled")
        assigned = self.port.switch._function_macs.get(tx.function_index)
        if assigned is not None and assigned != stream.src:
            return self._reject("tx_spoof")
        if tx.tx_rate_limit_bps > 0:
            return self._reject("tx_rate_limit")
        if tx is self.vf:
            return self._reject("tx_is_rx")
        if not float(
                self.tx_driver.costs.guest_cycles_per_packet).is_integer():
            return self._reject("nonintegral_costs")
        if not super().try_attach():
            return False
        if hasattr(self.tx_driver, "_fluid"):
            self.tx_driver._fluid = self
        return True

    def _still_valid(self) -> bool:
        tx = self.tx
        return (super()._still_valid()
                and tx.enabled
                and self.tx_driver.running
                and tx.tx_rate_limit_bps <= 0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> bool:
        if self.active:
            return True
        if not super().begin():
            return False
        self._completions.clear()
        self._cseq = 1
        self._tick_cseq = 0
        return True

    # ------------------------------------------------------------------
    # the three-way merged virtual event loop
    # ------------------------------------------------------------------
    def _advance(self, limit: float, inclusive: bool) -> None:
        sim = self.sim
        completions = self._completions
        while True:
            t = self._t_next
            c = self._tick_cseq
            kind = 0
            if completions:
                head = completions[0]
                if (head[0], head[1]) < (t, c):
                    t = head[0]
                    c = head[1]
                    kind = 1
            fire_at = self._fire_at
            if fire_at is not None and (fire_at, self._fire_cseq) < (t, c):
                t = fire_at
                kind = 2
            if not (t < limit or (inclusive and t == limit)):
                return
            if kind == 0:
                self._replay_tick()
            elif kind == 1:
                fin, _c, tick_time = completions.popleft()
                self._replay_completion(fin, tick_time)
            else:
                self._fire_at = None
                self._replay_fire(t)
            sim.collapsed_events += 1

    def _replay_tick(self) -> None:
        """One sender tick: ``NetperfStream._tick`` -> ``transmit`` ->
        ``hw_transmit`` -> ``route_transmit`` per packet, with the two
        PCIe crossings booked against the live pipe and each delivery
        queued as a virtual completion."""
        from repro.devices.igb82576 import TX_BACKLOG_LIMIT
        count, tick_time = self._next_tick()
        cseq = self._cseq
        if count > 0:
            stream = self.stream
            mtu = stream.mtu
            stream.sent.value += count
            stream.sent_bytes.value += count * mtu
            tx_driver = self.tx_driver
            if tx_driver.running:
                # The driver's transmit charges the whole burst —
                # packets dropped further down included.
                self.sender_domain.charge_guest(
                    tx_driver.costs.guest_cycles_per_packet * count)
                tx = self.tx
                if tx.enabled:
                    port = self.port
                    datapath = port.datapath
                    busy = datapath._busy_until
                    ser = (2 * mtu) * 8 / datapath.effective_bps
                    completions = self._completions
                    delivered = 0
                    dropped = 0
                    for _ in range(count):
                        # route_transmit: the FIFO-backlog check comes
                        # before classification and its counter.
                        if busy - tick_time > TX_BACKLOG_LIMIT:
                            dropped += 1
                            continue
                        port.internal_loopback_packets += 1
                        start = busy if busy > tick_time else tick_time
                        fin = start + ser
                        busy = fin
                        completions.append((fin, cseq, tick_time))
                        cseq += 1
                        delivered += 1
                    datapath._busy_until = busy
                    if delivered:
                        datapath.transferred_bytes.value += delivered * 2 * mtu
                        datapath.transfers.value += delivered
                        tx.tx_packets += delivered
                        tx.tx_bytes += delivered * mtu
                    if dropped:
                        tx.tx_backlog_drops += dropped
        # The reschedule runs after the sink, so the next tick handle's
        # virtual seq postdates this tick's completions.
        self._tick_cseq = cseq
        self._cseq = cseq + 1

    def _replay_completion(self, fin: float, tick_time: float) -> None:
        """One loopback delivery: ``device_receive([packet])`` against
        the frozen ring image, then the throttle request."""
        vf = self.vf
        if self._backlog >= self._capacity:
            # Ring full: offered and dropped, no interrupt requested.
            vf.fluid_receive(1, 0, 0)
            return
        vf.fluid_receive(1, 1, self.stream.mtu)
        self._backlog += 1
        pending = self._pending
        if pending and pending[-1][2] == tick_time:
            count, accepted, t = pending[-1]
            pending[-1] = (count + 1, accepted + 1, t)
        else:
            pending.append((1, 1, tick_time))
        if self._fire_at is None:
            throttle = vf.throttle
            due = throttle._last_fired + throttle.interval
            if fin >= due:
                self._replay_fire(fin)
            else:
                self._fire_at = due
                self._fire_cseq = self._cseq
                self._cseq += 1

    # ------------------------------------------------------------------
    # leaving the fast path
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        super()._materialize()
        completions = self._completions
        if not completions:
            return
        stream = self.stream
        pool = stream.pool
        port = self.port
        sim = self.sim
        vf = self.vf
        # In-flight crossings become real scheduled deliveries, in
        # creation (= finish) order so their new handle seqs preserve
        # the exact run's relative order.
        for fin, _cseq, tick_time in completions:
            burst = pool.acquire_burst(1, stream.src, stream.dst,
                                       stream.mtu, stream.vlan,
                                       stream.protocol, stream.flow_id,
                                       tick_time)
            sim.schedule_at(fin, port._deliver_internal(vf, burst[0]))
        completions.clear()
