"""Measurement primitives.

Every number the benchmarks print flows through one of these:

* :class:`Counter` — a plain monotonic count (packets delivered, VM exits).
* :class:`RateMeter` — counts over a window, read back as events/second.
* :class:`TimeWeighted` — time-weighted average of a piecewise-constant
  value (queue depth, link occupancy).
* :class:`Histogram` — fixed-bin histogram with percentile queries
  (latency distributions).
* :class:`Series` — (time, value) samples for timeline figures
  (the migration throughput plots, Figs. 20-21).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Sequence, Tuple


class Counter:
    """A monotonic event counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class RateMeter:
    """Counts events between :meth:`reset` points; reads back as a rate.

    Used e.g. by the AIC policy, which samples packets-per-second once a
    second (§5.3 of the paper) to adapt the interrupt frequency.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._count: float = 0.0
        self._window_start: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self._count += amount

    def rate(self, now: float) -> float:
        """Events per second since the last reset (0 for an empty window)."""
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._count / elapsed

    def reset(self, now: float) -> None:
        self._count = 0.0
        self._window_start = now

    @property
    def count(self) -> float:
        return self._count


class TimeWeighted:
    """Time-weighted statistics of a piecewise-constant signal."""

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._value = initial
        self._last_change = start_time
        self._weighted_sum = 0.0
        self._start = start_time
        self._max = initial
        self._min = initial

    def update(self, value: float, now: float) -> None:
        """Record that the signal took ``value`` from ``now`` onward."""
        if now < self._last_change:
            raise ValueError("time went backwards in TimeWeighted.update")
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        self._max = max(self._max, value)
        self._min = min(self._min, value)

    @property
    def current(self) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def minimum(self) -> float:
        return self._min

    def mean(self, now: float) -> float:
        """Time-weighted mean over [start, now]."""
        elapsed = now - self._start
        if elapsed <= 0:
            return self._value
        total = self._weighted_sum + self._value * (now - self._last_change)
        return total / elapsed


class Histogram:
    """A histogram over fixed-width bins with percentile queries."""

    def __init__(self, bin_width: float, name: str = ""):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.name = name
        self.bin_width = bin_width
        self._bins: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0

    def add(self, value: float) -> None:
        index = int(math.floor(value / self.bin_width))
        self._bins[index] = self._bins.get(index, 0) + 1
        self._count += 1
        self._sum += value
        self._sum_sq += value * value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def stdev(self) -> float:
        if self._count < 2:
            return 0.0
        mean = self.mean
        var = max(0.0, self._sum_sq / self._count - mean * mean)
        return math.sqrt(var)

    def percentile(self, p: float) -> float:
        """Return the lower edge of the bin containing the p-th percentile."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self._count == 0:
            return 0.0
        target = self._count * p / 100.0
        cumulative = 0
        for index in sorted(self._bins):
            cumulative += self._bins[index]
            if cumulative >= target:
                return index * self.bin_width
        return max(self._bins) * self.bin_width

    def items(self) -> List[Tuple[float, int]]:
        """(bin lower edge, count) pairs in ascending order."""
        return [(i * self.bin_width, c) for i, c in sorted(self._bins.items())]


class Series:
    """Timestamped samples, for timeline figures.

    Supports windowed aggregation (``bucketize``) which is how the
    migration benchmarks turn per-event samples into the per-second
    throughput traces of Figs. 20-21.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError("series timestamps must be non-decreasing")
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def value_at(self, time: float, default: float = 0.0) -> float:
        """Most recent value at or before ``time`` (step interpolation)."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return default
        return self._values[index]

    def window_sum(self, start: float, end: float) -> float:
        """Sum of sample values with start <= t < end."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return sum(self._values[lo:hi])

    def percentile(self, q: float) -> float:
        """The q-th percentile of the recorded *values* (order
        statistics with linear interpolation, ignoring timestamps).

        Unlike :meth:`Histogram.percentile` this is exact — a Series
        keeps every sample — which is what the campaign hub's
        cross-cell aggregates need: a fleet of tens of cells would
        alias badly through fixed-width bins.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._values:
            raise ValueError(f"series {self.name!r} is empty: "
                             "no percentiles")
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (len(ordered) - 1) * q / 100.0
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self, percentiles: Sequence[float] = (50, 90, 99)
                ) -> Dict[str, float]:
        """One dict summarizing the recorded values: ``count``/``sum``
        always, plus ``min``/``max``/``mean`` and a ``p<q>`` entry per
        requested percentile when the series is non-empty.

        Keys are deterministic for a given argument list, so the dict
        is safe to embed in byte-compared JSON documents.
        """
        doc: Dict[str, float] = {"count": len(self._values),
                                 "sum": sum(self._values)}
        if not self._values:
            return doc
        doc["min"] = min(self._values)
        doc["max"] = max(self._values)
        doc["mean"] = doc["sum"] / len(self._values)
        for q in percentiles:
            label = f"{q:g}"
            doc[f"p{label}"] = self.percentile(q)
        return doc

    def bucketize(self, start: float, end: float, width: float) -> List[Tuple[float, float]]:
        """Aggregate sample values into fixed-width buckets.

        Returns (bucket start, sum of values in bucket) pairs covering
        [start, end).
        """
        if width <= 0:
            raise ValueError("bucket width must be positive")
        # Bucket edges are computed as start + i * width rather than by
        # repeated addition: over the thousands of buckets a long
        # migration timeline produces, accumulating ``t += width``
        # drifts by many ULPs and misassigns edge samples.
        buckets: List[Tuple[float, float]] = []
        index = 0
        while True:
            lo = start + index * width
            if lo >= end:
                break
            hi = min(start + (index + 1) * width, end)
            buckets.append((lo, self.window_sum(lo, hi)))
            index += 1
        return buckets
