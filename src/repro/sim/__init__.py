"""Discrete-event simulation substrate.

Everything in the reproduction runs on this kernel: hardware models,
the hypervisor, drivers, workloads and the migration engine are all
event-driven objects scheduled on a single :class:`Simulator`.

The kernel is deliberately small and fully deterministic:

* :class:`Simulator` — the event loop (a priority queue of timestamped
  callbacks with stable FIFO tie-breaking).
* :class:`Process` — generator-based cooperative processes for code that
  reads better as a sequential script (e.g. the migration manager).
* :class:`Condition` — a one-shot waitable event processes can block on.
* :mod:`repro.sim.rand` — named, independently seeded random streams so
  adding a new consumer never perturbs existing ones.
* :mod:`repro.sim.stats` — time-weighted statistics, rate meters and
  histograms used by every measurement in the benchmarks.
"""

from repro.sim.engine import EventHandle, Simulator, SimulationError
from repro.sim.process import Condition, Interrupt, Process
from repro.sim.rand import RandomStreams
from repro.sim.stats import (
    Counter,
    Histogram,
    RateMeter,
    Series,
    TimeWeighted,
)

__all__ = [
    "Condition",
    "Counter",
    "EventHandle",
    "Histogram",
    "Interrupt",
    "Process",
    "RandomStreams",
    "RateMeter",
    "Series",
    "SimulationError",
    "Simulator",
    "TimeWeighted",
]
