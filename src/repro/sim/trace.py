"""Structured trace capture.

A :class:`Tracer` records timestamped, categorized events into a bounded
ring buffer — the xentrace analogue this reproduction uses to debug and
to let tests assert on *sequences* of behaviour rather than just
aggregate counters.  Tracing is off unless a tracer is installed, and a
disabled tracer's :meth:`Tracer.emit` is a cheap no-op, so hot paths can
trace unconditionally.

Typical use::

    tracer = Tracer(sim, capacity=10_000)
    tracer.enable("irq", "mailbox")
    ...
    for event in tracer.select(category="irq", after=1.0):
        print(event)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One captured event."""

    time: float
    category: str
    name: str
    #: Free-form key=value detail (kept small; this is a debug channel).
    detail: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"[{self.time:.6f}] {self.category}:{self.name} {detail}".rstrip()


class Tracer:
    """A bounded, category-filtered event recorder."""

    def __init__(self, sim: Simulator, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._enabled: Optional[set] = set()  # None = everything
        self.dropped = 0
        self.emitted = 0

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def enable(self, *categories: str) -> None:
        """Enable specific categories (cumulative)."""
        if self._enabled is None:
            self._enabled = set()
        self._enabled.update(categories)

    def enable_all(self) -> None:
        self._enabled = None

    def disable(self, *categories: str) -> None:
        if self._enabled is None:
            raise ValueError("disable specific categories only after "
                             "enabling specific ones")
        self._enabled.difference_update(categories)

    def is_enabled(self, category: str) -> bool:
        return self._enabled is None or category in self._enabled

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def emit(self, category: str, name: str, **detail: Any) -> None:
        """Record an event if its category is enabled."""
        if not self.is_enabled(category):
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self.emitted += 1
        self._events.append(TraceEvent(self.sim.now, category, name,
                                       tuple(detail.items())))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def select(self, category: Optional[str] = None,
               name: Optional[str] = None,
               after: Optional[float] = None,
               before: Optional[float] = None) -> Iterator[TraceEvent]:
        """Filter captured events."""
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            if after is not None and event.time < after:
                continue
            if before is not None and event.time >= before:
                continue
            yield event

    def counts_by_name(self, category: Optional[str] = None) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.select(category=category):
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self.emitted = 0


class NullTracer:
    """The do-nothing tracer installed by default: emit() is free."""

    def emit(self, category: str, name: str, **detail: Any) -> None:
        pass

    def is_enabled(self, category: str) -> bool:
        return False


#: Shared default instance (stateless, so sharing is safe).
NULL_TRACER = NullTracer()
