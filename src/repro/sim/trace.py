"""Structured trace capture.

A :class:`Tracer` records timestamped, categorized events into a bounded
ring buffer — the xentrace analogue this reproduction uses to debug and
to let tests assert on *sequences* of behaviour rather than just
aggregate counters.  Tracing is off unless a tracer is installed, and a
disabled tracer's :meth:`Tracer.emit` is a cheap no-op, so hot paths can
trace unconditionally.

Besides point events (:meth:`Tracer.emit`), a tracer records *spans* —
begin/end pairs (:meth:`Tracer.begin` / :meth:`Tracer.end`) marking the
extent of an operation such as an interrupt delivery, a DMA transfer, a
mailbox round trip or a migration phase.  :mod:`repro.obs.export` turns
the captured stream into Chrome trace-event JSON for
``chrome://tracing`` / Perfetto, or plain JSONL.

Typical use::

    tracer = Tracer(sim, capacity=10_000)
    tracer.enable("irq", "mailbox")
    ...
    for event in tracer.select(category="irq", after=1.0):
        print(event)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.sim.engine import Simulator

#: Event phases, following the Chrome trace-event convention:
#: ``"i"`` instant, ``"B"`` span begin, ``"E"`` span end.
PHASE_INSTANT = "i"
PHASE_BEGIN = "B"
PHASE_END = "E"


@dataclass(frozen=True)
class TraceEvent:
    """One captured event."""

    time: float
    category: str
    name: str
    #: Free-form key=value detail (kept small; this is a debug channel).
    detail: Tuple[Tuple[str, Any], ...] = ()
    #: ``"i"`` (instant), ``"B"`` (span begin) or ``"E"`` (span end).
    phase: str = PHASE_INSTANT

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail)
        marker = "" if self.phase == PHASE_INSTANT else f"{self.phase} "
        return (f"[{self.time:.6f}] {marker}{self.category}:{self.name} "
                f"{detail}").rstrip()


class Tracer:
    """A bounded, category-filtered event recorder.

    The buffer is a ring: when full, appending a new event *evicts* the
    oldest one.  :attr:`emitted` counts every event ever recorded,
    :attr:`evicted` counts how many were pushed out of the ring — so
    ``len(tracer) == emitted - evicted`` always holds.
    """

    def __init__(self, sim: Simulator, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._enabled: Optional[set] = set()  # None = everything
        #: Events pushed out of the ring by newer ones (oldest-first).
        self.evicted = 0
        self.emitted = 0
        #: Running per-(category, name) counts of events *in the buffer*,
        #: maintained on emit/evict so :meth:`counts_by_name` never walks
        #: the ring.
        self._counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def enable(self, *categories: str) -> None:
        """Enable specific categories (cumulative)."""
        if self._enabled is None:
            self._enabled = set()
        self._enabled.update(categories)

    def enable_all(self) -> None:
        self._enabled = None

    def disable(self, *categories: str) -> None:
        if self._enabled is None:
            raise ValueError("disable specific categories only after "
                             "enabling specific ones")
        self._enabled.difference_update(categories)

    def is_enabled(self, category: str) -> bool:
        return self._enabled is None or category in self._enabled

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def emit(self, category: str, name: str, **detail: Any) -> None:
        """Record an instant event if its category is enabled."""
        if not self.is_enabled(category):
            return
        self._record(category, name, detail, PHASE_INSTANT)

    def begin(self, category: str, name: str, **detail: Any) -> None:
        """Open a span: pairs with a later :meth:`end` of the same
        category/name (spans of the same category may nest)."""
        if not self.is_enabled(category):
            return
        self._record(category, name, detail, PHASE_BEGIN)

    def end(self, category: str, name: str, **detail: Any) -> None:
        """Close the innermost open span of this category/name."""
        if not self.is_enabled(category):
            return
        self._record(category, name, detail, PHASE_END)

    def _record(self, category: str, name: str, detail: Dict[str, Any],
                phase: str) -> None:
        events = self._events
        if len(events) == self.capacity:
            # The ring is full: appending evicts the oldest event.
            oldest = events[0]
            self.evicted += 1
            old_key = (oldest.category, oldest.name)
            remaining = self._counts[old_key] - 1
            if remaining:
                self._counts[old_key] = remaining
            else:
                del self._counts[old_key]
        self.emitted += 1
        key = (category, name)
        self._counts[key] = self._counts.get(key, 0) + 1
        events.append(TraceEvent(self.sim.now, category, name,
                                 tuple(detail.items()), phase))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Backwards-compatible alias for :attr:`evicted`."""
        return self.evicted

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def select(self, category: Optional[str] = None,
               name: Optional[str] = None,
               after: Optional[float] = None,
               before: Optional[float] = None) -> Iterator[TraceEvent]:
        """Filter captured events."""
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            if after is not None and event.time < after:
                continue
            if before is not None and event.time >= before:
                continue
            yield event

    def counts_by_name(self, category: Optional[str] = None) -> Dict[str, int]:
        """Per-name counts of events currently in the buffer (O(distinct
        names), from the running tallies — the ring is never walked)."""
        counts: Dict[str, int] = {}
        for (cat, name), count in self._counts.items():
            if category is not None and cat != category:
                continue
            counts[name] = counts.get(name, 0) + count
        return counts

    def clear(self) -> None:
        self._events.clear()
        self._counts.clear()
        self.evicted = 0
        self.emitted = 0


class NullTracer:
    """The do-nothing tracer installed by default: emit() is free."""

    def emit(self, category: str, name: str, **detail: Any) -> None:
        pass

    def begin(self, category: str, name: str, **detail: Any) -> None:
        pass

    def end(self, category: str, name: str, **detail: Any) -> None:
        pass

    def is_enabled(self, category: str) -> bool:
        return False


#: Shared default instance (stateless, so sharing is safe).
NULL_TRACER = NullTracer()
