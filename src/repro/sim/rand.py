"""Named, independently seeded random streams.

Every stochastic component draws from its own named stream derived from a
single root seed, so adding a new random consumer (or reordering calls in
one component) never changes what any other component sees.  This is what
makes benchmark runs reproducible across library versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of deterministic :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=42)
    >>> rng = streams.get("nic0.arrivals")
    >>> rng2 = streams.get("nic0.arrivals")
    >>> rng is rng2
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
