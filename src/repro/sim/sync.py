"""Conservative synchronization between independent event engines.

Multi-host scenarios give every host its own :class:`~repro.sim.engine
.Simulator`.  The engines stay causally consistent the SimBricks way:
nothing crosses the fabric in less than the uplink latency ``L``, so
each engine may free-run up to ``min(next event anywhere) + L`` without
risk of receiving a message from its past.  :class:`LockstepBarrier`
computes those windows; the cluster coordinator drives every host to
each window end, exchanges the messages that surfaced, and repeats.

Two properties the rest of the stack leans on:

* **No time travel.**  Any message emitted at time ``t`` inside a
  window arrives at ``t + L`` or later; the window ends at or before
  ``floor + L`` where ``floor <= t``, so arrivals always land at or
  after every engine's clock.  ``schedule_at`` never sees the past.
* **Determinism.**  Window boundaries depend only on event timestamps
  and pending arrivals — pure float arithmetic, identical whether the
  hosts step serially in one process or in parallel worker processes.
"""

from __future__ import annotations

from typing import Iterable, Optional


class LockstepBarrier:
    """Window calculator for conservatively synchronized engines."""

    def __init__(self, lookahead: float):
        if lookahead <= 0:
            raise ValueError("lookahead must be positive (it is the "
                             "minimum cross-engine message latency)")
        self.lookahead = lookahead
        #: Synchronization rounds computed so far (observability only).
        self.windows = 0

    def next_window(self, until: float,
                    peeks: Iterable[Optional[float]],
                    pending_arrivals: Iterable[float]) -> Optional[float]:
        """The next safe horizon, or None when nothing remains.

        ``peeks`` are each engine's next-event timestamp (None for an
        idle engine); ``pending_arrivals`` are cross-engine messages
        already routed but not yet injected.  Returns ``until`` when no
        work precedes the horizon — the caller runs everyone to
        ``until`` and stops — and None when additionally every engine
        is already at ``until``.
        """
        floor = None
        for candidate in list(peeks) + list(pending_arrivals):
            if candidate is None or candidate > until:
                continue
            if floor is None or candidate < floor:
                floor = candidate
        if floor is None:
            return until
        self.windows += 1
        return min(until, floor + self.lookahead)
