"""Generator-based cooperative processes.

Sequential protocols — the DNIS migration choreography, a netperf session,
a pre-copy loop — read far better as straight-line code than as a web of
callbacks.  A :class:`Process` wraps a generator that *yields*:

* a ``float`` — sleep that many simulated seconds;
* a :class:`Condition` — block until someone calls ``condition.succeed()``.

Processes can be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupt` inside the generator at its current yield point.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.sim.engine import EventHandle, SimulationError, Simulator


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Condition:
    """A one-shot waitable event.

    Any number of processes may wait on the same condition; all are resumed
    (in wait order) when :meth:`succeed` fires.  A value may be carried to
    the waiters and becomes the result of their ``yield``.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._waiters: List["Process"] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Fire the condition, resuming all waiters at the current instant."""
        if self.triggered:
            raise SimulationError("condition already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.schedule(0.0, process._resume, value)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)


class Process:
    """Drives a generator as a cooperative simulated process."""

    def __init__(self, sim: Simulator, generator: Generator[Any, Any, Any], name: str = ""):
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self.done = Condition(sim)
        self._sleep_handle: Optional[EventHandle] = None
        # Start on the next tick so construction order does not matter.
        sim.schedule(0.0, self._resume, None)

    def interrupt(self, cause: Any = None) -> None:
        """Inject :class:`Interrupt` at the process's current yield point."""
        if not self.alive:
            return
        if self._sleep_handle is not None:
            self._sleep_handle.cancel()
            self._sleep_handle = None
        self._sim.schedule(0.0, self._throw, Interrupt(cause))

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._sleep_handle = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(yielded)

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        try:
            yielded = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: it dies quietly.
            self._finish(None)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Condition):
            if yielded.triggered:
                self._sim.schedule(0.0, self._resume, yielded.value)
            else:
                yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            self._wait_on(yielded.done)
        elif isinstance(yielded, (int, float)):
            self._sleep_handle = self._sim.schedule(float(yielded), self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        if not self.done.triggered:
            self.done.succeed(result)
