"""The calendar-queue timer tier in front of the event heap.

The simulated testbed's queue is dominated by dense, near-future
periodic timers: netperf generator ticks (100 µs – 2 ms), interrupt
throttle re-arms (~0.5 ms), AIC sample timers, link deliveries a few
slot-widths ahead.  A binary heap pays O(log n) twice per such event;
a timer wheel pays O(1) amortized: insert appends to the bucket of the
event's time slot, and the engine drains exactly one bucket at a time,
sorting its handful of entries just before they fire.

Design constraints that keep the engine's semantics bit-identical:

* **One absolute slot per bucket.**  An entry is accepted only when its
  slot lies strictly inside the open window ``(base, base + nslots)``,
  so ``slot % nslots`` can never mix two different absolute slots in
  one bucket.  Everything at or beyond the horizon — and everything in
  the engine's current slot — goes to the heap instead; the heap is
  always correct, the wheel is only a fast path.
* **Exact next-slot hint.**  ``next_slot`` is always the smallest
  populated absolute slot: inserts maintain the running minimum, and
  :meth:`load`/:meth:`compact` rescan.  The engine compares slot
  *numbers* (``int(time * inv_width)``), never reconstructed times, so
  float rounding cannot misorder the wheel against the heap.
* **Monotonic base.**  ``base`` only moves forward (bucket loads, or a
  re-snap to the clock while the wheel is empty), mirroring the
  simulator clock's monotonicity.

Entries are the engine's native ``(time, seq, handle)`` tuples; the
wheel never inspects the handle except in :meth:`compact`, where
lazily-cancelled debris is dropped eagerly.
"""

from __future__ import annotations

from typing import List, Tuple

#: Sentinel "no populated slot": larger than any reachable slot index.
FAR_SLOT = 1 << 62

#: Default slot width: 64 µs buckets keep same-slot collisions to a
#: handful of entries at the simulated testbed's event densities.
DEFAULT_WIDTH = 64e-6

#: Default slot count: with 64 µs slots this spans ~0.26 s, which
#: covers every periodic timer in the testbed (the longest, the 2 ms
#: netperf burst tick, fits 2000 times over).
DEFAULT_NSLOTS = 4096


class TimerWheel:
    """A single-level calendar queue over ``(time, seq, handle)`` tuples."""

    __slots__ = ("width", "inv_width", "nslots", "buckets", "base",
                 "horizon", "next_slot", "count")

    def __init__(self, width: float = DEFAULT_WIDTH,
                 nslots: int = DEFAULT_NSLOTS,
                 start_time: float = 0.0):
        if width <= 0:
            raise ValueError("slot width must be positive")
        if nslots < 2:
            raise ValueError("need at least 2 slots")
        self.width = width
        self.inv_width = 1.0 / width
        self.nslots = nslots
        self.buckets: List[List[Tuple]] = [[] for _ in range(nslots)]
        #: Slot at or below which entries must go to the heap.
        self.base = int(start_time * self.inv_width)
        #: First time value past the insertable window.
        self.horizon = (self.base + nslots) * width
        #: Smallest populated absolute slot (exact), or FAR_SLOT.
        self.next_slot = FAR_SLOT
        #: Total queued entries, including lazily-cancelled ones.
        self.count = 0

    def try_insert(self, now: float, time: float, entry: Tuple) -> bool:
        """Accept ``entry`` into its slot's bucket, or return False.

        ``False`` means the caller must push to the heap: the time is at
        or beyond the horizon (including a sub-horizon float that rounds
        into the horizon slot itself), or inside the current (partially
        drained) slot.  While the wheel is empty the window re-snaps to ``now``
        so a long heap-only stretch cannot strand the horizon in the
        past.
        """
        if self.count == 0:
            base = int(now * self.inv_width)
            if base > self.base:
                self.base = base
                self.horizon = (base + self.nslots) * self.width
        if time >= self.horizon:
            return False
        slot = int(time * self.inv_width)
        if slot <= self.base:
            return False
        if slot - self.base >= self.nslots:
            # A time strictly below ``horizon`` can still round up to
            # slot ``base + nslots`` (``time * inv_width`` and
            # ``(base + nslots) * width`` round independently).  That
            # slot's bucket index aliases a window-interior slot, so the
            # entry would fire a full wheel rotation late.  The open
            # window ``(base, base + nslots)`` is the contract: anything
            # outside it is the heap's.
            return False
        self.buckets[slot % self.nslots].append(entry)
        self.count += 1
        if slot < self.next_slot:
            self.next_slot = slot
        return True

    def load(self) -> List[Tuple]:
        """Drain the next populated bucket, sorted, advancing the window.

        Only call with ``count > 0``.  The returned list becomes the
        engine's current-slot buffer; its entries all share one absolute
        slot, so every later wheel entry fires strictly after them.
        """
        slot = self.next_slot
        index = slot % self.nslots
        bucket = self.buckets[index]
        self.buckets[index] = []
        bucket.sort()
        self.base = slot
        self.horizon = (slot + self.nslots) * self.width
        self.count -= len(bucket)
        if self.count:
            scan = slot + 1
            buckets = self.buckets
            nslots = self.nslots
            while not buckets[scan % nslots]:
                scan += 1
            self.next_slot = scan
        else:
            self.next_slot = FAR_SLOT
        return bucket

    def compact(self) -> None:
        """Eagerly drop lazily-cancelled entries from every bucket.

        Buckets are filtered in place (by index) so the engine's cached
        references stay valid; ``next_slot`` is recomputed exactly.
        """
        if not self.count:
            return
        count = 0
        next_slot = FAR_SLOT
        inv_width = self.inv_width
        buckets = self.buckets
        for index, bucket in enumerate(buckets):
            if not bucket:
                continue
            kept = [entry for entry in bucket if not entry[2].cancelled]
            if len(kept) != len(bucket):
                buckets[index] = kept
            if kept:
                count += len(kept)
                slot = int(kept[0][0] * inv_width)
                if slot < next_slot:
                    next_slot = slot
        self.count = count
        self.next_slot = next_slot
