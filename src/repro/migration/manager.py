"""The migration manager: drives Figs. 20-21 against live traffic.

Two flows, per §4.4 and §6.7:

* **Plain PV migration** (Fig. 20): the guest's only NIC is the PV
  frontend (hardware-neutral), so migration is pre-copy rounds followed
  by the stop-and-copy blackout.
* **DNIS migration** (Fig. 21): first the virtual hot-removal of the VF
  (bond fails over to the PV NIC, costing the ~0.6 s switch outage),
  then "the migration manager starts the 'real' VM migration process,
  as if the guest was never equipped with the VF hardware", and finally
  a virtual hot-add restores VF performance at the target.

dom0 is charged the migration data-moving cost in 100 ms slices so the
CPU timelines show the pre-copy load, as the paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.drivers.netfront import Netfront
from repro.migration.dnis import DnisGuest
from repro.migration.precopy import PrecopyConfig, PrecopyModel
from repro.sim.process import Condition, Process
from repro.vmm.hotplug import HotplugController

#: Slice width for charging migration CPU to dom0.
CPU_SLICE = 0.1


@dataclass
class MigrationReport:
    """Timestamps and events of one migration."""

    started_at: float = 0.0
    switch_completed_at: Optional[float] = None  # DNIS only
    round_durations: List[float] = field(default_factory=list)
    blackout_start: float = 0.0
    blackout_end: float = 0.0
    completed_at: float = 0.0
    events: List[Tuple[float, str]] = field(default_factory=list)

    def mark(self, time: float, event: str) -> None:
        self.events.append((time, event))

    @property
    def downtime(self) -> float:
        return self.blackout_end - self.blackout_start

    @property
    def total_time(self) -> float:
        return self.completed_at - self.started_at


class MigrationManager:
    """Orchestrates live migrations on a testbed platform."""

    def __init__(self, platform, hotplug: HotplugController,
                 config: Optional[PrecopyConfig] = None):
        self.platform = platform
        self.sim = platform.sim
        self.hotplug = hotplug
        self.config = (config or PrecopyConfig()).validate()
        self.model = PrecopyModel(self.config)

    # ------------------------------------------------------------------
    def migrate_pv(self, netfront: Netfront,
                   start_at: float) -> Tuple[Process, MigrationReport]:
        """Migrate a guest whose service rides the PV NIC (Fig. 20)."""
        report = MigrationReport()
        process = Process(self.sim, self._pv_flow(netfront, start_at, report),
                          name=f"migrate-{netfront.domain.name}")
        return process, report

    def migrate_dnis(self, guest: DnisGuest,
                     start_at: float) -> Tuple[Process, MigrationReport]:
        """Migrate a guest running DNIS over a VF (Fig. 21)."""
        report = MigrationReport()
        process = Process(self.sim, self._dnis_flow(guest, start_at, report),
                          name=f"migrate-{guest.domain.name}")
        return process, report

    # ------------------------------------------------------------------
    def abort(self, process: Process, report: MigrationReport,
              netfront: Netfront,
              dnis_guest: Optional[DnisGuest] = None) -> None:
        """Cancel an in-flight migration.

        Pre-copy work already done is discarded; the service must end up
        fully available at the *source*: carrier restored, and — for a
        DNIS guest whose VF was already ejected — the VF hot-added back.
        Aborting after the blackout began is refused (the stop-and-copy
        point is the commit point, as in real Xen).
        """
        if not process.alive:
            raise RuntimeError("migration already completed")
        if report.blackout_start and self.sim.now >= report.blackout_start:
            raise RuntimeError("cannot abort after stop-and-copy began")
        process.interrupt("aborted")
        netfront.set_carrier(True)
        report.mark(self.sim.now, "aborted")
        if dnis_guest is not None and not dnis_guest.vf_driver.running:
            self.hotplug.hot_add(dnis_guest.domain, "vf")

    # ------------------------------------------------------------------
    def _pv_flow(self, netfront: Netfront, start_at: float,
                 report: MigrationReport):
        yield max(0.0, start_at - self.sim.now)
        report.started_at = self.sim.now
        report.mark(self.sim.now, "migration-start")
        trace = self.platform.trace
        trace.begin("migration", "pv", domain=netfront.domain.id)
        yield from self._precopy_rounds(report)
        yield from self._blackout(report, netfront)
        report.completed_at = self.sim.now
        report.mark(self.sim.now, "migration-complete")
        trace.end("migration", "pv", domain=netfront.domain.id)

    def _dnis_flow(self, guest: DnisGuest, start_at: float,
                   report: MigrationReport):
        yield max(0.0, start_at - self.sim.now)
        report.started_at = self.sim.now
        report.mark(self.sim.now, "migration-start")
        trace = self.platform.trace
        trace.begin("migration", "dnis", domain=guest.domain.id)
        # Step 1: virtual hot removal of the VF; the bond fails over to
        # the PV NIC (the guest handles the ACPI event).
        trace.begin("migration", "interface-switch", domain=guest.domain.id)
        removed = Condition(self.sim)
        self.hotplug.request_removal(guest.domain, "vf", removed.succeed)
        yield removed
        # Wait out the interface-switch packet-loss window too, so the
        # "real" migration starts with the service restored on PV.
        yield guest.switch_outage
        report.switch_completed_at = self.sim.now
        report.mark(self.sim.now, "interface-switched-to-pv")
        trace.end("migration", "interface-switch", domain=guest.domain.id)
        # Step 2: the real migration, as if there were never a VF.
        yield from self._precopy_rounds(report)
        yield from self._blackout(report, guest.netfront)
        # Step 3: virtual hot add at the target restores the VF path.
        trace.begin("migration", "hot-add", domain=guest.domain.id)
        added = Condition(self.sim)
        self.hotplug.hot_add(guest.domain, "vf", added.succeed)
        yield added
        report.completed_at = self.sim.now
        report.mark(self.sim.now, "vf-restored-at-target")
        trace.end("migration", "hot-add", domain=guest.domain.id)
        trace.end("migration", "dnis", domain=guest.domain.id)

    # ------------------------------------------------------------------
    def _precopy_rounds(self, report: MigrationReport):
        """Live rounds: service stays up; dom0 pays the copy CPU."""
        trace = self.platform.trace
        for round_index, (duration, bytes_) in enumerate(
                zip(self.model.round_durations(), self.model.round_bytes())):
            report.round_durations.append(duration)
            report.mark(self.sim.now, f"precopy-round-{round_index}")
            trace.begin("migration", "precopy", round=round_index,
                        bytes=bytes_)
            cycles_total = bytes_ * self.config.cpu_cycles_per_byte
            remaining = duration
            while remaining > 0:
                slice_ = min(CPU_SLICE, remaining)
                self._charge_dom0(cycles_total * slice_ / duration)
                yield slice_
                remaining -= slice_
            trace.end("migration", "precopy", round=round_index)

    def _blackout(self, report: MigrationReport, netfront: Netfront):
        """Stop-and-copy: the VM is paused; service is down."""
        report.blackout_start = self.sim.now
        report.mark(self.sim.now, "stop-and-copy")
        trace = self.platform.trace
        trace.begin("migration", "stop-and-copy",
                    domain=netfront.domain.id)
        netfront.set_carrier(False)
        final_cycles = (self.model.final_dirty_bytes()
                        * self.config.cpu_cycles_per_byte)
        self._charge_dom0(final_cycles)
        yield self.model.downtime
        netfront.set_carrier(True)
        report.blackout_end = self.sim.now
        report.mark(self.sim.now, "service-restored")
        trace.end("migration", "stop-and-copy", domain=netfront.domain.id)

    def _charge_dom0(self, cycles: float) -> None:
        dom0 = getattr(self.platform, "dom0", None)
        if dom0 is not None:
            # The migration helper runs on dom0's last VCPU, away from
            # the netback threads.
            dom0.charge_guest(cycles, vcpu=len(dom0.vcpus) - 1)
