"""The iterative pre-copy migration model.

Xen's live migration (the paper's [2]) transfers memory in rounds: round
1 copies all of RAM; each later round copies the pages dirtied during
the previous round; when the dirty set stops shrinking usefully, the VM
is paused and the remainder goes in the stop-and-copy blackout.

Calibration targets the Figs. 20-21 schedule: migration starts at
t = 4.5 s, the service blackout begins at ~10.3-10.4 s and ends at
11.8 s — i.e. ~5.8 s of live pre-copy and ~1.4-1.5 s of downtime on a
1 Gbps migration link with a netperf-busy 512 MiB guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class PrecopyConfig:
    """Migration parameters.

    ``dirty_ratio`` is the fraction of the link's copy rate that the
    running workload re-dirties: each round's duration is the previous
    round's times this ratio.
    """

    memory_bytes: int = 512 * 1024 * 1024
    link_bps: float = 1e9
    dirty_ratio: float = 0.3
    #: Stop iterating when a round would move less than this.
    min_round_bytes: int = 16 * 1024 * 1024
    max_rounds: int = 30
    #: Device state save/restore + network service restoration at the
    #: target (ARP settling etc.); the dominant share of the paper's
    #: measured ~1.4 s blackout.
    restore_overhead: float = 1.3
    #: dom0 CPU cost of moving one byte of migration traffic.
    cpu_cycles_per_byte: float = 3.0

    def validate(self) -> "PrecopyConfig":
        if self.memory_bytes <= 0 or self.link_bps <= 0:
            raise ValueError("memory and link rate must be positive")
        if not 0 <= self.dirty_ratio < 1:
            raise ValueError("dirty_ratio must be in [0, 1)")
        if self.max_rounds < 1:
            raise ValueError("need at least one pre-copy round")
        return self


class PrecopyModel:
    """Derives the round schedule from a :class:`PrecopyConfig`."""

    def __init__(self, config: PrecopyConfig):
        self.config = config.validate()

    # ------------------------------------------------------------------
    def round_bytes(self) -> List[int]:
        """Bytes moved per live round (excluding stop-and-copy)."""
        rounds: List[int] = []
        moved = self.config.memory_bytes
        for _ in range(self.config.max_rounds):
            rounds.append(int(moved))
            dirtied = int(moved * self.config.dirty_ratio)
            if dirtied < self.config.min_round_bytes:
                break
            moved = dirtied
        return rounds

    def round_durations(self) -> List[float]:
        return [bytes_ * 8 / self.config.link_bps for bytes_ in self.round_bytes()]

    def final_dirty_bytes(self) -> int:
        """What remains for stop-and-copy after the last live round."""
        return int(self.round_bytes()[-1] * self.config.dirty_ratio)

    # ------------------------------------------------------------------
    @property
    def precopy_time(self) -> float:
        """Live (service-up) portion of the migration."""
        return sum(self.round_durations())

    @property
    def downtime(self) -> float:
        """The stop-and-copy blackout."""
        transfer = self.final_dirty_bytes() * 8 / self.config.link_bps
        return transfer + self.config.restore_overhead

    @property
    def total_time(self) -> float:
        return self.precopy_time + self.downtime

    def total_bytes(self) -> int:
        return sum(self.round_bytes()) + self.final_dirty_bytes()

    def cpu_cycles(self) -> float:
        """dom0 cycles spent moving the whole migration."""
        return self.total_bytes() * self.config.cpu_cycles_per_byte
