"""Samplers and downtime extraction for the migration timelines.

Figs. 20-21 plot per-interval netperf throughput and CPU utilization
around a migration.  :class:`Sampler` snapshots cumulative counters on a
fixed period and stores the per-period delta; :func:`downtime_windows`
turns a throughput series into the outage intervals the paper quotes
("service shuts down at 10.4 s ... restored at 11.8 s").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import EventHandle, Simulator
from repro.sim.stats import Series


class Sampler:
    """Periodically samples cumulative counters into delta series."""

    def __init__(self, sim: Simulator, period: float = 0.1):
        if period <= 0:
            raise ValueError("sample period must be positive")
        self.sim = sim
        self.period = period
        self._sources: Dict[str, Callable[[], float]] = {}
        self._last: Dict[str, float] = {}
        self._series: Dict[str, Series] = {}
        self._handle: Optional[EventHandle] = None
        self.running = False

    def track(self, name: str, source: Callable[[], float]) -> None:
        """Track a cumulative counter; the series stores per-period
        deltas (e.g. bytes per 100 ms)."""
        self._sources[name] = source
        self._last[name] = source()
        self._series[name] = Series(name)

    def track_gauge(self, name: str, source: Callable[[], float]) -> None:
        """Track an instantaneous value (stored as-is, not a delta)."""
        self._sources[name] = source
        self._last[name] = float("nan")  # sentinel: gauge
        self._series[name] = Series(name)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._handle = self.sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        self.running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def series(self, name: str) -> Series:
        return self._series[name]

    def _tick(self) -> None:
        if not self.running:
            return
        for name, source in self._sources.items():
            value = source()
            last = self._last[name]
            if last != last:  # NaN sentinel: gauge
                self._series[name].record(self.sim.now, value)
            else:
                self._series[name].record(self.sim.now, value - last)
                self._last[name] = value
        self._handle = self.sim.schedule(self.period, self._tick)


def series_from_timeline(timeline: Dict, name: str) -> Series:
    """Rebuild a :class:`Series` from a serialized run timeline.

    ``timeline`` is the ``extras["timeline"]`` dict a migration
    :class:`~repro.core.experiment.RunResult` carries: sampled series go
    through JSON on their way into the sweep cache, and come back out
    here for :func:`downtime_windows` and the figure tables.
    """
    data = timeline["series"][name]
    series = Series(name)
    for time, value in zip(data["times"], data["values"]):
        series.record(time, value)
    return series


def downtime_windows(series: Series, threshold: float,
                     min_duration: float = 0.0) -> List[Tuple[float, float]]:
    """Extract intervals where the sampled delta fell below threshold.

    Returns (start, end) pairs; ``start`` is the first below-threshold
    sample's interval start (one period earlier than its timestamp).
    """
    windows: List[Tuple[float, float]] = []
    times = series.times
    values = series.values
    if not times:
        return windows
    period = times[1] - times[0] if len(times) > 1 else times[0]
    start: Optional[float] = None
    for t, v in zip(times, values):
        if v < threshold:
            if start is None:
                start = t - period
        else:
            if start is not None:
                windows.append((start, t - period))
                start = None
    if start is not None:
        windows.append((start, times[-1]))
    return [(s, e) for s, e in windows if e - s >= min_duration]
