"""Live migration: pre-copy, DNIS, and service timelines (§4.4, §6.7).

* :mod:`repro.migration.precopy` — the iterative pre-copy model: round
  durations, the stop-and-copy blackout, total migration time.
* :mod:`repro.migration.dnis` — the paper's Dynamic Network Interface
  Switching: a bond of (VF driver, PV NIC) plus the virtual-hot-plug
  choreography that ejects the VF before migration and restores it
  after.
* :mod:`repro.migration.manager` — the migration manager process that
  drives either a plain PV migration (Fig. 20) or a DNIS migration
  (Fig. 21) against live traffic.
* :mod:`repro.migration.timeline` — periodic samplers and downtime
  extraction for the Figs. 20-21 timelines.
"""

from repro.migration.dnis import DnisGuest, PvSlave, VfSlave
from repro.migration.manager import MigrationManager, MigrationReport
from repro.migration.precopy import PrecopyConfig, PrecopyModel
from repro.migration.timeline import (
    Sampler,
    downtime_windows,
    series_from_timeline,
)

__all__ = [
    "DnisGuest",
    "MigrationManager",
    "MigrationReport",
    "PrecopyConfig",
    "PrecopyModel",
    "PvSlave",
    "Sampler",
    "VfSlave",
    "downtime_windows",
    "series_from_timeline",
]
