"""Dynamic Network Interface Switching (DNIS), §4.4.

The guest-side machinery: a bonding driver aggregating the VF driver
(active, for performance) with the PV NIC (standby, hardware-neutral).
On a virtual hot-removal event the guest shuts the VF driver down and
the bond fails over to the PV NIC; after migration, a virtual hot-add
restores the VF and the bond switches back.

The interface switch itself costs ~0.6 s of packet loss ("the DNIS
incurs ... an additional 0.6 s service shutdown time at very beginning
of migration, due to packet loss at interface switch time", §6.7):
until the switch's MAC table and the bond settle, inbound packets have
no delivery path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.drivers.bonding import (
    BondingDriver,
    DEFAULT_MIIMON_INTERVAL,
    SlaveDevice,
)
from repro.drivers.netfront import Netfront
from repro.drivers.vf_igbvf import VfDriver
from repro.net.packet import Packet
from repro.vmm.domain import Domain
from repro.vmm.hotplug import HotplugController

#: Inbound packet-loss window while the interface switch settles (§6.7).
DEFAULT_SWITCH_OUTAGE = 0.6


class VfSlave(SlaveDevice):
    """The bond's view of the VF driver."""

    def __init__(self, driver: VfDriver, name: str = "vf0"):
        self.driver = driver
        self._name = name

    @property
    def slave_name(self) -> str:
        return self._name

    @property
    def carrier(self) -> bool:
        # Up only when the driver is bound AND the PF reports link-up
        # (the §4.2 link_change event feeds the bond's MII monitor).
        return self.driver.running and self.driver.carrier

    def transmit(self, burst: List[Packet]) -> int:
        return self.driver.transmit(burst)


class PvSlave(SlaveDevice):
    """The bond's view of the PV NIC."""

    def __init__(self, netfront: Netfront, name: str = "eth0"):
        self.netfront = netfront
        self._name = name

    @property
    def slave_name(self) -> str:
        return self._name

    @property
    def carrier(self) -> bool:
        return self.netfront.carrier_on

    def transmit(self, burst: List[Packet]) -> int:
        # TX through the PV path is flow-controlled by the shared ring;
        # the backend accepts the burst for copy-out.
        return len(burst)


class DnisGuest:
    """One guest running the DNIS configuration.

    Owns the bond, the two slaves, and the guest's ACPI hot-plug
    handler.  :meth:`wire_sink` is the ingress the client stream feeds:
    it dispatches to whichever interface currently carries the service,
    dropping packets during the switch window and the blackout — which
    is exactly what the Figs. 20-21 timelines measure.
    """

    def __init__(self, platform, domain: Domain, vf_driver: VfDriver,
                 netfront: Netfront, hotplug: HotplugController,
                 switch_outage: float = DEFAULT_SWITCH_OUTAGE,
                 miimon: float = DEFAULT_MIIMON_INTERVAL):
        self.platform = platform
        self.sim = platform.sim
        self.domain = domain
        self.vf_driver = vf_driver
        self.netfront = netfront
        self.hotplug = hotplug
        self.switch_outage = switch_outage
        self.bond = BondingDriver(self.sim, name=f"bond-{domain.name}")
        self.vf_slave = VfSlave(vf_driver)
        self.pv_slave = PvSlave(netfront)
        self.bond.enslave(self.vf_slave)
        self.bond.enslave(self.pv_slave)
        self.bond.set_active(self.vf_slave.slave_name)
        # The VF is the preferred slave (§4.4: active for performance);
        # the MII monitor polls both carriers, so a link flap the §4.2
        # link_change event announces is detected within one interval
        # and the bond degrades to the PV path instead of crashing.
        self.bond.primary = self.vf_slave.slave_name
        self.bond.start_miimon(miimon)
        # Suspend/resume toggles the PV carrier; tell the bond at the
        # transition itself (the MII monitor would notice one interval
        # later, stretching the blackout by up to `miimon` seconds).
        netfront.carrier_watchers.append(
            lambda on: self.bond.carrier_changed(self.pv_slave.slave_name))
        hotplug.register_guest(domain, self._acpi_event)
        self._switching_until: float = -1.0
        self.dropped_at_switch = 0
        self.dropped_in_blackout = 0

    # ------------------------------------------------------------------
    # ingress dispatch
    # ------------------------------------------------------------------
    def wire_sink(self, burst: List[Packet]) -> None:
        """Client traffic arrives; deliver via the active interface."""
        if self.sim.now < self._switching_until:
            self.dropped_at_switch += len(burst)
            return
        active = self.bond.active_slave
        if active == self.vf_slave.slave_name and self.vf_driver.running:
            if self.vf_driver.carrier:
                self.vf_driver.vf.port.wire_receive(burst)
            else:
                # The VF's physical link is down but the MII monitor
                # has not noticed yet: the wire simply loses the burst.
                self.dropped_in_blackout += len(burst)
        elif active == self.pv_slave.slave_name and self.netfront.carrier_on:
            backend = self.netfront.backend
            if backend is not None:
                backend.deliver(self.netfront, burst)
            else:
                self.dropped_in_blackout += len(burst)
        else:
            self.dropped_in_blackout += len(burst)

    # ------------------------------------------------------------------
    # the ACPI choreography
    # ------------------------------------------------------------------
    def _acpi_event(self, kind: str, device) -> None:
        if kind == "remove":
            # Guest OS response to virtual hot removal: shut the VF
            # driver down, let the bond fail over to the PV NIC.
            self._switching_until = self.sim.now + self.switch_outage
            self.vf_driver.stop()
            self.bond.carrier_changed(self.vf_slave.slave_name)
        elif kind == "add":
            # VF present at the target: bring the driver back and make
            # it the active slave again.  §4.4's "mobile pass-through":
            # "the VF hardware in the target platform may or may not be
            # identical to that in the source platform" — a different
            # VF arriving with the hot-add event gets a fresh driver
            # instance bound to it.
            from repro.devices.igb82576 import VirtualFunction
            if (isinstance(device, VirtualFunction)
                    and device is not self.vf_driver.vf):
                self._adopt_new_vf(device)
            else:
                self.vf_driver.start()
            self.bond.carrier_changed(self.vf_slave.slave_name)
            if self.vf_slave.carrier:
                self.bond.set_active(self.vf_slave.slave_name)
            # else: the VF arrived with its link down (e.g. a flap
            # overlapping the hot-add); the bond stays on the PV path
            # and the MII monitor switches back to the primary once
            # carrier returns.

    def _adopt_new_vf(self, vf) -> None:
        """Bind a fresh VF-driver instance to the target platform's VF,
        keeping the application and coalescing policy."""
        slave_name = self.vf_slave.slave_name
        self.bond.release(slave_name)
        self.vf_driver = VfDriver(self.platform, self.domain, vf,
                                  self.vf_driver.policy,
                                  self.vf_driver.app)
        self.vf_driver.start()
        self.vf_slave = VfSlave(self.vf_driver, slave_name)
        self.bond.enslave(self.vf_slave)

    # ------------------------------------------------------------------
    @property
    def active_path(self) -> Optional[str]:
        return self.bond.active_slave
