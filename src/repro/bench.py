"""The tracked performance-benchmark harness behind ``repro bench``.

Two tiers of measurement, both reported as a schema-versioned JSON
document (``BENCH_<n>.json``) so the repo carries a perf trajectory the
same way EXPERIMENTS.md carries a fidelity trajectory:

* **Engine micro-loops** — synthetic event patterns that isolate the
  :class:`~repro.sim.engine.Simulator` hot path: a rolling stream of
  one-shot events (the packet-dispatch shape), a bank of self-rearming
  periodic timers (the netperf-generator / MII-monitor shape), and a
  cancel-and-rearm loop (the interrupt-throttle shape that litters the
  queue with lazily-cancelled debris).  Reported as events/sec.
* **Scenario benches** — bench-scale variants of the fig06/fig08-10/
  fig15/fig16/fig22 campaigns run end-to-end through
  :class:`ExperimentRunner`, reported as wall-clock seconds plus
  events/sec (executed + collapsed over wall time).  Throughput rides along as a semantic anchor: a perf
  change must not move it.  Each scenario also runs in
  ``sim_mode="fluid"`` (``<name>_fluid``), hard-gated on its
  throughput anchor matching the exact run with *float equality* and
  on the fluid run not being slower — a mismatch raises instead of
  reporting, because it would mean the fast path broke its exactness
  contract (see docs/performance.md).

``compare()`` implements the CI perf-smoke gate: fresh events/sec may
not fall more than ``tolerance`` (default 20%) below a committed
baseline.
"""

from __future__ import annotations

import json
import platform
import re
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.api import Scenario, _dispatch
from repro.core.experiment import ExperimentRunner
from repro.sim.engine import Simulator

#: Schema tag in every BENCH_*.json document.
BENCH_SCHEMA = "repro-bench/1"

#: CI regression gate: fail if events/sec drops by more than this.
REGRESSION_TOLERANCE = 0.20

#: Best-of-N repeats for the engine micro-loops (cheap, and the max
#: filters scheduler noise; scenarios run once — they are the honest,
#: expensive measurement).
MICRO_REPEATS = 3


def _noop() -> None:
    pass


def _rate(events: int, seconds: float) -> Dict[str, float]:
    """The common (events, seconds, events/sec) record."""
    return {
        "events": int(events),
        "seconds": round(seconds, 6),
        "events_per_sec": round(events / seconds, 1) if seconds > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# engine micro-loops
# ----------------------------------------------------------------------
def bench_event_stream(events: int) -> Dict[str, float]:
    """A rolling window of one-shot events: the packet-dispatch shape.

    A pump event schedules a burst of no-ops just ahead of itself and
    re-arms, so the heap stays shallow and churning — like wire
    arrivals feeding DMA completions — rather than pre-loaded deep.
    """
    sim = Simulator()
    schedule = sim.schedule
    burst = 64
    issued = [0]

    def pump() -> None:
        n = issued[0]
        if n >= events:
            return
        issued[0] = n + burst
        for _ in range(burst - 1):
            schedule(1e-6, _noop)
        schedule(2e-6, pump)

    schedule(0.0, pump)
    start = time.perf_counter()
    sim.run()
    return _rate(sim.events_executed, time.perf_counter() - start)


def bench_periodic_timers(events: int, timers: int = 32) -> Dict[str, float]:
    """A bank of self-rearming periodic timers: the generator shape.

    Mirrors the dense periodic tier (netperf ticks, MII monitor, AIC
    sample timers) the timer wheel is built for: many concurrent
    timers, each rescheduling itself a fixed period ahead.
    """
    sim = Simulator()
    fired = [0]

    def make(period: float) -> Callable[[], None]:
        def tick() -> None:
            fired[0] += 1
            if fired[0] < events:
                sim.schedule(period, tick)
        return tick

    for i in range(timers):
        # Slightly detuned periods so ticks interleave instead of
        # degenerating into one synchronized batch per period.
        sim.schedule((i + 1) * 1e-6, make(250e-6 + i * 1e-6))
    start = time.perf_counter()
    sim.run()
    return _rate(sim.events_executed, time.perf_counter() - start)


def bench_cancel_rearm(events: int) -> Dict[str, float]:
    """Arm a deadline, cancel it, re-arm closer: the throttle shape.

    Every iteration leaves one lazily-cancelled entry behind, the
    debris pattern interrupt-throttle re-arms generate in real runs.
    """
    sim = Simulator()
    fired = [0]

    def fire() -> None:
        fired[0] += 1
        if fired[0] >= events:
            return
        handle = sim.schedule(1e-3, fire)
        handle.cancel()
        sim.schedule(100e-6, fire)

    sim.schedule(0.0, fire)
    start = time.perf_counter()
    sim.run()
    return _rate(sim.events_executed, time.perf_counter() - start)


#: name -> (callable taking an event count, quick count, full count)
ENGINE_LOOPS: Dict[str, Tuple[Callable[[int], Dict[str, float]], int, int]] = {
    "event_stream": (bench_event_stream, 50_000, 400_000),
    "periodic_timers": (bench_periodic_timers, 50_000, 400_000),
    "cancel_rearm": (bench_cancel_rearm, 30_000, 200_000),
}


# ----------------------------------------------------------------------
# scenario benches
# ----------------------------------------------------------------------
_FIXED_2K = {"kind": "fixed_itr", "hz": 2000}
_AIC = {"kind": "aic"}


def bench_scenarios(quick: bool) -> Dict[str, Scenario]:
    """Bench-scale variants of the tracked figure campaigns.

    Same modes, kinds, kernels and policies as the figure registry
    (:mod:`repro.sweep.figures`); VM counts and windows sized so a
    bench run finishes in tens of seconds, not the figures' minutes.
    The fig08/09/10 entries carry the adaptive-ITR policy and fig22
    the cross-host fabric — the flow classes the fluid datapath
    collapses beyond the fixed-ITR steady state.
    """
    warmup, duration = (0.1, 0.1) if quick else (0.3, 0.4)
    aic_warmup, aic_duration = (0.1, 0.1) if quick else (0.5, 0.7)
    return {
        "fig06": Scenario(mode="sriov", ports=1, kernel="2.6.18",
                          policy={"kind": "dynamic_itr"}, opts={},
                          vm_count=2 if quick else 5,
                          warmup=warmup, duration=duration),
        "fig08": Scenario(mode="sriov", vm_count=1, ports=1,
                          policy=_AIC,
                          warmup=aic_warmup, duration=aic_duration),
        "fig09": Scenario(mode="sriov", vm_count=1, ports=1,
                          policy=_AIC, protocol="tcp",
                          warmup=aic_warmup, duration=aic_duration),
        "fig10": Scenario(mode="intervm", variant="sriov",
                          sender="dom0", policy=_AIC,
                          warmup=0.05 if quick else 0.15,
                          duration=0.05 if quick else 0.2),
        "fig15": Scenario(mode="sriov", kind="hvm", policy=_FIXED_2K,
                          vm_count=2 if quick else 10,
                          warmup=warmup, duration=duration),
        "fig16": Scenario(mode="sriov", kind="pvm", policy=_FIXED_2K,
                          vm_count=2 if quick else 10,
                          warmup=warmup, duration=duration),
        "fig22": Scenario(
            mode="cluster",
            hosts=[{"name": "h0", "vm_count": 1, "ports": 1},
                   {"name": "h1", "vm_count": 1, "ports": 1}],
            flows=[{"src_host": "h0", "dst_host": "h1",
                    "offered_bps": 900e6},
                   {"src_host": "h1", "dst_host": "h0",
                    "offered_bps": 900e6}],
            fabric={"uplink_gbps": 10.0, "latency_s": 2e-5},
            warmup=0.1 if quick else 0.3,
            duration=0.05 if quick else 0.5),
    }


def run_scenario_bench(scenario: Scenario) -> Dict[str, float]:
    """Run one scenario end-to-end and report wall-clock + events/sec.

    ``events`` counts simulated work, executed *plus* collapsed: a
    ``sim_mode="fluid"`` run that arithmetically replays N events did
    the same simulation as an exact run that dispatched them, so the
    two rates are commensurable (``events_collapsed`` reports the
    split).  ``throughput_bps`` rides along unrounded — the anchor the
    fluid gate compares with exact float equality.
    """
    runner = ExperimentRunner(warmup=scenario.warmup,
                              duration=scenario.duration,
                              seed=scenario.seed,
                              faults=scenario.faults,
                              sim_mode=scenario.sim_mode)
    start = time.perf_counter()
    result = _dispatch(runner, scenario)
    wall = time.perf_counter() - start
    executed = collapsed = 0
    if runner.last_bed is not None:
        executed = runner.last_bed.sim.events_executed
        collapsed = runner.last_bed.sim.collapsed_events
    elif scenario.mode == "cluster":
        # Cluster runs keep no bed behind: executed events come from
        # the per-host extras, collapsed from the fluid sidecar.
        hosts = result.extras["cluster"]["hosts"]
        executed = sum(host["events_executed"] for host in hosts.values())
        if result.fluid is not None:
            collapsed = result.fluid["collapsed_events"]
    out = _rate(executed + collapsed, wall)
    out["wall_seconds"] = out.pop("seconds")
    out["events_collapsed"] = int(collapsed)
    total = executed + collapsed
    out["collapsed_fraction"] = (round(collapsed / total, 4)
                                 if total else 0.0)
    out["vm_count"] = (result.vm_count if scenario.mode == "cluster"
                       else scenario.vm_count)
    out["throughput_bps"] = result.throughput_bps
    out["throughput_gbps"] = round(result.throughput_bps / 1e9, 4)
    return out


# ----------------------------------------------------------------------
# the full run, comparison, and file numbering
# ----------------------------------------------------------------------
def run_bench(quick: bool = False, label: str = "",
              progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run every benchmark and return the BENCH document."""
    say = progress or (lambda line: None)
    engine: Dict[str, Dict[str, float]] = {}
    for name, (fn, quick_n, full_n) in ENGINE_LOOPS.items():
        count = quick_n if quick else full_n
        best: Optional[Dict[str, float]] = None
        for _ in range(MICRO_REPEATS):
            result = fn(count)
            if best is None or result["events_per_sec"] > best["events_per_sec"]:
                best = result
        assert best is not None
        engine[name] = best
        say(f"engine.{name}: {best['events_per_sec']:,.0f} events/sec")
    scenarios: Dict[str, Dict[str, float]] = {}
    for name, scenario in bench_scenarios(quick).items():
        result = run_scenario_bench(scenario)
        scenarios[name] = result
        say(f"scenario.{name}: {result['wall_seconds']:.2f} s wall, "
            f"{result['events_per_sec']:,.0f} events/sec, "
            f"{result['throughput_gbps']:.2f} Gbps")
        fluid = run_scenario_bench(scenario.with_(sim_mode="fluid"))
        fluid["anchor_exact_bps"] = result["throughput_bps"]
        fluid["anchor_equal"] = (
            fluid["throughput_bps"] == result["throughput_bps"])
        fluid["speedup"] = round(
            result["wall_seconds"] / fluid["wall_seconds"], 2)
        scenarios[name + "_fluid"] = fluid
        say(f"scenario.{name}_fluid: {fluid['wall_seconds']:.2f} s wall, "
            f"{fluid['events_collapsed']:,} collapsed, "
            f"{fluid['speedup']:.2f}x, anchor "
            f"{'equal' if fluid['anchor_equal'] else 'MISMATCH'}")
        # Hard gates, not tolerances: the fluid mode's contract is
        # byte-identical anchors, and a fluid run that collapsed
        # events yet took longer than exact means the fast path is
        # doing extra work somewhere.
        if not fluid["anchor_equal"]:
            raise RuntimeError(
                f"scenario.{name}: fluid throughput anchor "
                f"{fluid['throughput_bps']!r} != exact "
                f"{result['throughput_bps']!r}")
        if (fluid["events_collapsed"]
                and fluid["wall_seconds"] > result["wall_seconds"]):
            raise RuntimeError(
                f"scenario.{name}: fluid mode slower than exact "
                f"({fluid['wall_seconds']:.2f}s vs "
                f"{result['wall_seconds']:.2f}s)")
    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine": engine,
        "scenarios": scenarios,
    }


def compare(baseline: dict, fresh: dict,
            tolerance: float = REGRESSION_TOLERANCE
            ) -> Tuple[List[str], List[str]]:
    """Compare events/sec against a baseline document.

    Returns ``(regressions, report_lines)``: one report line per metric
    present in both documents, and a regression entry for every metric
    that fell more than ``tolerance`` below the baseline.  Comparing a
    quick run against a full baseline (or vice versa) is rejected —
    the event counts differ, so the rates aren't commensurable.
    """
    if baseline.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"baseline schema {baseline.get('schema')!r} "
                         f"!= {BENCH_SCHEMA!r}")
    if baseline.get("mode") != fresh.get("mode"):
        raise ValueError(f"cannot compare mode={fresh.get('mode')!r} run "
                         f"against mode={baseline.get('mode')!r} baseline")
    regressions: List[str] = []
    lines: List[str] = []
    for section in ("engine", "scenarios"):
        base_section = baseline.get(section, {})
        fresh_section = fresh.get(section, {})
        for name in sorted(base_section):
            if name not in fresh_section:
                continue
            base_rate = base_section[name].get("events_per_sec", 0.0)
            fresh_rate = fresh_section[name].get("events_per_sec", 0.0)
            if not base_rate:
                continue
            ratio = fresh_rate / base_rate
            lines.append(f"{section}.{name}: {fresh_rate:,.0f} vs "
                         f"{base_rate:,.0f} events/sec ({ratio:.2f}x)")
            if ratio < 1.0 - tolerance:
                regressions.append(
                    f"{section}.{name} regressed {(1.0 - ratio):.0%} "
                    f"(>{tolerance:.0%} allowed)")
            # A fluid entry that used to collapse and now executes
            # everything exactly is an eligibility regression — the
            # fast path silently fell back — even if the events/sec
            # rate happens to stay inside tolerance.
            base_frac = base_section[name].get("collapsed_fraction", 0.0)
            fresh_frac = fresh_section[name].get("collapsed_fraction", 0.0)
            if base_frac > 0.0 and fresh_frac == 0.0:
                regressions.append(
                    f"{section}.{name} no longer collapses any events "
                    f"(baseline collapsed {base_frac:.0%})")
    if not lines:
        raise ValueError("baseline and fresh documents share no metrics")
    return regressions, lines


_BENCH_NAME = re.compile(r"BENCH_(\d+)\.json$")


def next_bench_path(directory: Path) -> Path:
    """The next free ``BENCH_<n>.json`` slot in ``directory``."""
    numbers = [int(match.group(1))
               for path in Path(directory).glob("BENCH_*.json")
               if (match := _BENCH_NAME.match(path.name))]
    return Path(directory) / f"BENCH_{max(numbers, default=0) + 1:04d}.json"


def write_bench(doc: dict, path: Path) -> None:
    """Write a BENCH document in the repo's canonical JSON form."""
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def load_bench(path: Path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: schema {doc.get('schema')!r} "
                         f"!= {BENCH_SCHEMA!r}")
    return doc
