"""Process-per-host execution: one worker process per cluster host.

The sweep engine parallelizes *across* scenarios; this module
parallelizes *inside* one, following the same worker discipline
(:mod:`repro.sweep.jobs`): everything crossing the process boundary is
plain data — spec dicts down, egress-record/result dicts up — so the
parent never holds live simulator state and the pickled floats are
bit-exact.  Each worker builds its :class:`~repro.core.host.Host` from
the same derived seed the serial path uses, which is why the two modes
produce byte-identical results.

Workers are supervised like sweep workers: a hard per-command deadline
(:data:`COMMAND_TIMEOUT_S`) turns a hung or dead worker into a
diagnosable :class:`ClusterWorkerError` instead of a silent stall, and
``close()`` always reaps the child.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
from typing import Dict, List, Optional

from repro.core.costs import CostModel
from repro.core.host import HostSpec

#: Upper bound on one worker command round-trip (a lockstep window is
#: typically microseconds of simulated time; minutes of wall clock means
#: the worker is gone).
COMMAND_TIMEOUT_S = 300.0


class ClusterWorkerError(RuntimeError):
    """A host worker died or timed out mid-run."""


def host_worker(conn, spec_dict: dict, index: int, costs_dict: dict,
                base_seed: int, audit: bool,
                sim_mode: str = "exact",
                faults: Optional[List[dict]] = None) -> None:
    """Worker entrypoint (module-level so it imports under any start
    method).  Answers the parent's command tuples until ``close``."""
    from repro.core.host import Host
    try:
        host = Host(HostSpec.from_dict(spec_dict, index), index,
                    costs=CostModel(**costs_dict), base_seed=base_seed,
                    audit=audit, telemetry=False, sim_mode=sim_mode,
                    faults=faults)
        conn.send(("ok", None))
    except BaseException as exc:  # construction failures must surface
        conn.send(("error", repr(exc)))
        conn.close()
        return
    while True:
        try:
            command, args = conn.recv()
        except EOFError:
            break
        try:
            if command == "mac_table":
                conn.send(("ok", host.mac_table()))
            elif command == "flows":
                host.configure_flows(args)
                conn.send(("ok", None))
            elif command == "peek":
                conn.send(("ok", host.peek()))
            elif command == "advance":
                window_end, inbound = args
                conn.send(("ok", host.advance(window_end, inbound)))
            elif command == "start_measurement":
                host.start_measurement()
                conn.send(("ok", None))
            elif command == "collect":
                conn.send(("ok", host.collect()))
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except BaseException as exc:
            conn.send(("error", repr(exc)))
    conn.close()


class ProcessHost:
    """Parent-side handle on one host worker process.

    Matches :class:`~repro.cluster.runner.InProcessHost`'s protocol;
    ``advance_begin``/``advance_finish`` are genuinely asynchronous here,
    so the coordinator's fan-out/gather runs every host's window
    concurrently.
    """

    def __init__(self, spec: HostSpec, index: int, *,
                 costs: CostModel, base_seed: int, audit: bool,
                 sim_mode: str = "exact",
                 faults: Optional[List[dict]] = None):
        self.name = spec.name
        ctx = mp.get_context()
        self._conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=host_worker,
            args=(child_conn, spec.to_dict(), index,
                  dataclasses.asdict(costs), base_seed, audit, sim_mode,
                  faults),
            name=f"repro-host-{spec.name}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._awaiting = False
        self._receive()  # construction acknowledgement

    # ------------------------------------------------------------------
    # the wire protocol
    # ------------------------------------------------------------------
    def _receive(self):
        if not self._conn.poll(COMMAND_TIMEOUT_S):
            self._reap()
            raise ClusterWorkerError(
                f"host worker {self.name!r} timed out after "
                f"{COMMAND_TIMEOUT_S:.0f}s")
        try:
            status, value = self._conn.recv()
        except EOFError:
            self._reap()
            raise ClusterWorkerError(
                f"host worker {self.name!r} died (exit code "
                f"{self._process.exitcode})")
        if status != "ok":
            self._reap()
            raise ClusterWorkerError(
                f"host worker {self.name!r} failed: {value}")
        return value

    def _call(self, command: str, args=None):
        self._conn.send((command, args))
        return self._receive()

    # ------------------------------------------------------------------
    # the host-runner protocol
    # ------------------------------------------------------------------
    def mac_table(self) -> Dict[int, int]:
        return self._call("mac_table")

    def configure_flows(self, flows: List[dict]) -> None:
        self._call("flows", flows)

    def peek(self) -> Optional[float]:
        return self._call("peek")

    def advance_begin(self, window_end: float, inbound: List[dict]) -> None:
        self._conn.send(("advance", (window_end, inbound)))
        self._awaiting = True

    def advance_finish(self):
        self._awaiting = False
        outbound, peek = self._receive()
        return outbound, peek

    def start_measurement(self) -> None:
        self._call("start_measurement")

    def collect(self) -> dict:
        return self._call("collect")

    def close(self) -> None:
        if self._process.is_alive():
            try:
                if not self._awaiting:
                    self._conn.send(("close", None))
                    self._conn.poll(5.0)
            except (BrokenPipeError, OSError):
                pass
        self._reap()

    def _reap(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=5.0)
