"""The cluster coordinator: lockstep windows, ToR routing, aggregation.

One coordinator owns the :class:`~repro.net.fabric.ToRSwitch` and a set
of host runners — in-process :class:`~repro.core.host.Host` wrappers, or
:class:`~repro.cluster.process.ProcessHost` workers.  Each round it

1. asks the :class:`~repro.sim.sync.LockstepBarrier` for the next safe
   horizon (global min of next events and pending fabric arrivals, plus
   the fabric-latency lookahead),
2. hands every host its due deliveries and advances it to the horizon
   (all hosts at once in process mode — that is the intra-scenario
   parallelism), and
3. routes the egress records that surfaced through the ToR, in a
   globally sorted order, producing the next round's arrivals.

Every quantity that reaches the result is computed from plain data in
the coordinator or summed from per-host dicts, so serial and
process-per-host runs are byte-identical by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.costs import CostModel
from repro.core.experiment import (
    DEFAULT_DURATION,
    DEFAULT_WARMUP,
    RunResult,
)
from repro.core.host import FlowSpec, Host, HostSpec
from repro.net.fabric import FabricSpec, ToRSwitch
from repro.sim.sync import LockstepBarrier


class InProcessHost:
    """The serial host runner: a thin veneer over :class:`Host` that
    matches the worker-process runner's begin/finish step protocol."""

    def __init__(self, spec: HostSpec, index: int, *, costs, base_seed,
                 audit, telemetry, sim_mode="exact", faults=None):
        self.host = Host(spec, index, costs=costs, base_seed=base_seed,
                         audit=audit, telemetry=telemetry,
                         sim_mode=sim_mode, faults=faults)
        self._step = None

    def mac_table(self) -> Dict[int, int]:
        return self.host.mac_table()

    def configure_flows(self, flows: List[dict]) -> None:
        self.host.configure_flows(flows)

    def peek(self) -> Optional[float]:
        return self.host.peek()

    def advance_begin(self, window_end: float, inbound: List[dict]) -> None:
        self._step = self.host.advance(window_end, inbound)

    def advance_finish(self):
        step, self._step = self._step, None
        return step

    def start_measurement(self) -> None:
        self.host.start_measurement()

    def collect(self) -> dict:
        return self.host.collect()

    def close(self) -> None:
        pass


class ClusterTelemetry:
    """Merged observability over every host's namespaced facade.

    Supports the metrics-document surface the CLI exports; per-host
    instrument names arrive pre-prefixed (``host.<name>.…``) so a plain
    dict union is collision-free.
    """

    def __init__(self, hosts: List[Host]):
        self._hosts = hosts

    def metrics_document(self, elapsed: float) -> dict:
        metrics: Dict[str, dict] = {}
        cycles: Dict[str, dict] = {}
        exits: Dict[str, dict] = {}
        for host in self._hosts:
            telemetry = host.telemetry
            document = telemetry.metrics_document(elapsed)
            metrics.update(document["metrics"])
            cycles[host.spec.name] = document["cycles"]
            exits[host.spec.name] = document["exits"]
        return {
            "schema": "repro-obs/1",
            "window": {"elapsed": elapsed,
                       "sim_time_end": self._hosts[0].sim.now},
            "metrics": metrics,
            "cycles": cycles,
            "exits": exits,
        }

    def metrics_json(self, elapsed: float) -> str:
        import json
        return json.dumps(self.metrics_document(elapsed), indent=2,
                          sort_keys=True)

    def write_metrics(self, path: str, elapsed: float) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.metrics_json(elapsed))


class ClusterCoordinator:
    """Drives N host runners through conservative lockstep windows."""

    def __init__(self, runners, tor: ToRSwitch, lookahead: float,
                 crash_at: Optional[Dict[int, float]] = None):
        self.runners = runners
        self.tor = tor
        self.barrier = LockstepBarrier(lookahead)
        #: Routed fabric messages not yet injected into their hosts.
        self.pending: List[dict] = []
        self.peeks: List[Optional[float]] = [r.peek() for r in runners]
        #: host index -> simulated time its engine freezes (host_crash
        #: faults); plan data, identical in serial and process modes.
        self.crash_at: Dict[int, float] = dict(crash_at or {})
        #: Hosts whose engines have reached their crash time.
        self.dead: set = set()

    def run(self, until: float) -> None:
        """Advance every host exactly to ``until`` (resumable: pending
        fabric messages beyond ``until`` carry over to the next call)."""
        while True:
            window = self.barrier.next_window(
                until, self.peeks, [m["arrival"] for m in self.pending])
            due = [m for m in self.pending if m["arrival"] <= window]
            self.pending = [m for m in self.pending
                            if m["arrival"] > window]
            due.sort(key=lambda m: (m["arrival"], m["src_host"], m["seq"]))
            inbound: Dict[int, List[dict]] = {}
            for message in due:
                inbound.setdefault(message["dst_host"], []).append(message)
            # Fan out first, then gather: with process runners every
            # host simulates its window concurrently.  A crashed host's
            # engine is capped at its crash time and then never stepped
            # again; the ToR timeline already drains traffic to or from
            # it, so a dead host can have no due deliveries.
            for index, runner in enumerate(self.runners):
                if index in self.dead:
                    continue
                cap = self.crash_at.get(index)
                end = window if cap is None else min(window, cap)
                runner.advance_begin(end, inbound.get(index, []))
            outbound: List[dict] = []
            for index, runner in enumerate(self.runners):
                if index in self.dead:
                    continue
                egress, peek = runner.advance_finish()
                cap = self.crash_at.get(index)
                if cap is not None and window >= cap:
                    self.dead.add(index)
                    peek = None
                self.peeks[index] = peek
                outbound.extend(egress)
            outbound.sort(key=lambda m: (m["t"], m["src_host"], m["seq"]))
            for message in outbound:
                routed = self.tor.route(message)
                if routed is not None:
                    self.pending.append(routed)
            if window >= until:
                return


def run_cluster(scenario, *, costs: Optional[CostModel] = None,
                parallel_hosts: bool = False,
                telemetry: bool = False,
                audit: bool = True) -> RunResult:
    """Execute one ``mode="cluster"`` scenario.

    ``parallel_hosts`` selects process-per-host execution; it is a run
    input (like ``costs``), **not** a Scenario field, so both modes
    share one cache key — which is honest, because they produce
    byte-identical results.  ``telemetry`` wires a namespaced
    per-host facade (serial mode only: live registries cannot cross the
    worker pipes).
    """
    if scenario.mode != "cluster":
        raise ValueError(f"run_cluster needs mode='cluster', "
                         f"not {scenario.mode!r}")
    if telemetry and parallel_hosts:
        raise ValueError("telemetry is observation-only and lives in the "
                         "host processes: use serial mode "
                         "(parallel_hosts=False) to collect it")
    host_specs = [HostSpec.from_dict(h, i)
                  for i, h in enumerate(scenario.hosts)]
    fabric = FabricSpec.from_dict(scenario.fabric)
    flow_specs = [FlowSpec.from_dict(f) for f in (scenario.flows or ())]
    host_index = {spec.name: i for i, spec in enumerate(host_specs)}

    costs = (costs or CostModel()).validate()
    sim_mode = getattr(scenario, "sim_mode", "exact")
    faults = list(getattr(scenario, "faults", None) or ())
    cluster_plan = None
    if faults:
        from repro.faults.cluster import split_plan
        cluster_plan = split_plan(faults, host_specs)
        # Faults force the exact datapath, same as single-host mode:
        # the collapsed-window replay cannot express mid-window carrier
        # or fabric perturbations.
        sim_mode = "exact"

    def host_faults(spec):
        if cluster_plan is None:
            return None
        return cluster_plan.for_host(spec.name) or None

    if parallel_hosts:
        from repro.cluster.process import ProcessHost
        runners = [ProcessHost(spec, i, costs=costs,
                               base_seed=scenario.seed, audit=audit,
                               sim_mode=sim_mode,
                               faults=host_faults(spec))
                   for i, spec in enumerate(host_specs)]
    else:
        runners = [InProcessHost(spec, i, costs=costs,
                                 base_seed=scenario.seed, audit=audit,
                                 telemetry=telemetry, sim_mode=sim_mode,
                                 faults=host_faults(spec))
                   for i, spec in enumerate(host_specs)]
    try:
        # Program the ToR from every host's VF table, then resolve the
        # traffic matrix to concrete destination MACs per source host.
        tor = ToRSwitch(fabric, len(runners))
        mac_tables = [runner.mac_table() for runner in runners]
        for index, table in enumerate(mac_tables):
            for mac_value in table.values():
                tor.learn(mac_value, index)
        flows_by_host: Dict[int, List[dict]] = {}
        for flow_id, flow in enumerate(flow_specs, start=1):
            src = host_index[flow.src_host]
            dst = host_index[flow.dst_host]
            resolved = {
                "src_vm": flow.src_vm,
                "dst_mac": mac_tables[dst][flow.dst_vm],
                "offered_bps": flow.offered_bps,
                "message_bytes": flow.message_bytes,
                "protocol": flow.protocol,
                "flow_id": flow_id,
            }
            flows_by_host.setdefault(src, []).append(resolved)
        for index, runner in enumerate(runners):
            runner.configure_flows(flows_by_host.get(index, []))
        if cluster_plan is not None:
            tor.set_timeline(cluster_plan.timeline)
        coordinator = ClusterCoordinator(
            runners, tor, fabric.latency_s,
            crash_at=(cluster_plan.timeline.crash_at
                      if cluster_plan is not None else None))
        coordinator.run(scenario.warmup)
        tor.reset_counters()
        for runner in runners:
            runner.start_measurement()
        coordinator.run(scenario.warmup + scenario.duration)
        host_results = [runner.collect() for runner in runners]
    finally:
        for runner in runners:
            runner.close()

    return _aggregate(scenario, host_results, tor, coordinator,
                      fabric, runners if telemetry else None)


def _aggregate(scenario, host_results: List[dict], tor: ToRSwitch,
               coordinator: ClusterCoordinator, fabric: FabricSpec,
               telemetry_runners) -> RunResult:
    elapsed = max(r["elapsed"] for r in host_results)
    per_vm: List[float] = []
    cpu: Dict[str, float] = {}
    exit_cycles: Dict[str, float] = {}
    exit_counts: Dict[str, int] = {}
    offered = dropped = 0
    interrupt_delta = driver_count = 0
    latency_sum = 0.0
    latency_count = 0
    latency_p99 = 0.0
    for result in host_results:
        per_vm.extend(result["per_vm_throughput_bps"])
        for account, percent in result["cpu"].items():
            cpu[account] = cpu.get(account, 0.0) + percent
        for kind, cycles in result["exit_cycles"].items():
            exit_cycles[kind] = exit_cycles.get(kind, 0.0) + cycles
        for kind, count in result["exit_counts"].items():
            exit_counts[kind] = exit_counts.get(kind, 0) + count
        offered += result["offered_packets"]
        dropped += result["dropped_packets"]
        interrupt_delta += result["interrupt_delta"]
        driver_count += result["driver_count"]
        latency_sum += result["latency_sum"]
        latency_count += result["latency_count"]
        latency_p99 = max(latency_p99, result["latency_p99"])
    from repro.audit import check_fabric_conservation
    check_fabric_conservation(
        tor, sim_time=max(r["elapsed"] for r in host_results))
    fabric_counters = tor.counters()
    # Fabric tail-drops (and unroutable frames) were offered traffic
    # that never reached a receiver's books.  Under a fault plan the
    # same goes for frames drained at silenced endpoints and frames
    # the host uplink layer dropped or still holds for retransmit.
    fabric_lost = fabric_counters["dropped"] + fabric_counters["unknown_dst"]
    fabric_lost += fabric_counters.get("drained", 0)
    fault_totals: Dict[str, int] = {}
    for result in host_results:
        for key, value in (result.get("faults") or {}).items():
            fault_totals[key] = fault_totals.get(key, 0) + value
    uplink_lost = (fault_totals.get("uplink_tx_dropped", 0)
                   + fault_totals.get("uplink_retransmit_pending", 0))
    offered += fabric_lost + uplink_lost
    dropped += fabric_lost + uplink_lost
    telemetry_facade = None
    if telemetry_runners is not None:
        hosts = [runner.host for runner in telemetry_runners]
        if all(host.telemetry is not None for host in hosts):
            telemetry_facade = ClusterTelemetry(hosts)
    # Fluid-datapath diagnostics ride as the RunResult sidecar, not in
    # extras: the per-host dicts embedded there must keep the exact
    # run's key set (events_executed aside, a fluid run's extras are
    # byte-identical to exact).
    fluid = None
    if any("events_collapsed" in result for result in host_results):
        rejections: Dict[str, int] = {}
        collapsed_by_host: Dict[str, int] = {}
        collapsed = executed = flow_count = 0
        for result in host_results:
            host_collapsed = result.pop("events_collapsed", 0)
            collapsed_by_host[result["name"]] = host_collapsed
            collapsed += host_collapsed
            flow_count += result.pop("fluid_flows", 0)
            for gate, n in (result.pop("fluid_rejections", None)
                            or {}).items():
                rejections[gate] = rejections.get(gate, 0) + n
            executed += result["events_executed"]
        fluid = {
            "collapsed_events": collapsed,
            "events_executed": executed,
            "flows": flow_count,
            "rejections": rejections,
            "collapsed_by_host": collapsed_by_host,
        }
    extras = {
        "cluster": {
            "hosts": {result["name"]: result for result in host_results},
            "fabric": {**fabric_counters, **fabric.to_dict()},
            "sync_windows": coordinator.barrier.windows,
        },
    }
    if getattr(scenario, "faults", None):
        # Namespaced cluster-wide fault summary: per-host injector and
        # uplink-layer counters summed, plus the ToR's fault buckets.
        # Present only on faulted scenarios, so fault-free extras stay
        # byte-identical to every earlier release.
        extras["faults"] = {
            **fault_totals,
            "fabric_drained": fabric_counters.get("drained", 0),
            "fabric_dropped_partition":
                fabric_counters.get("dropped_partition", 0),
            "fabric_dropped_unreachable":
                fabric_counters.get("dropped_unreachable", 0),
            "hosts_crashed": len(coordinator.dead),
        }
    return RunResult(
        vm_count=len(per_vm),
        duration=elapsed,
        throughput_bps=sum(per_vm),
        per_vm_throughput_bps=per_vm,
        cpu=cpu,
        loss_rate=dropped / offered if offered else 0.0,
        interrupt_hz=(interrupt_delta / driver_count / elapsed
                      if driver_count and elapsed > 0 else 0.0),
        exit_cycles_per_second={kind: cycles / elapsed
                                for kind, cycles in exit_cycles.items()
                                if elapsed > 0},
        exit_counts=exit_counts,
        latency_mean=latency_sum / latency_count if latency_count else 0.0,
        latency_p99=latency_p99,
        extras=extras,
        telemetry=telemetry_facade,
        fluid=fluid,
    )
