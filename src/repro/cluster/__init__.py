"""Multi-host cluster execution: N testbeds, one ToR, one timeline.

``mode="cluster"`` scenarios declare hosts (:class:`repro.core.host
.HostSpec`), a fabric (:class:`repro.net.fabric.FabricSpec`) and a
tenant traffic matrix (:class:`repro.core.host.FlowSpec`).
:func:`run_cluster` executes them — serially in one process, or with
one worker process per host — and both execution modes produce
byte-identical :class:`~repro.core.experiment.RunResult`\\ s.
"""

from repro.cluster.runner import run_cluster

__all__ = ["run_cluster"]
