"""The telemetry facade: one object wiring the whole testbed.

:class:`Telemetry` bundles the three always-available observability
pieces — a real :class:`~repro.sim.trace.Tracer`, a
:class:`~repro.obs.registry.MetricsRegistry` and the platform's
:class:`~repro.obs.ledger.CycleLedger` — and knows how to install them
across a platform and its devices, then render everything into the two
export artifacts:

* the **metrics document** (``--metrics-json``): a deterministic JSON
  snapshot of every registered instrument, the full per-domain cycle
  ledger, and the Fig. 7 exit breakdown;
* the **trace file** (``--trace-out``): Chrome trace-event JSON or
  JSONL via :mod:`repro.obs.export`.

Determinism contract: the metrics document contains only simulated
quantities, so two runs with identical arguments produce byte-identical
files.  Host wall-clock lives exclusively in the separate
:class:`~repro.obs.profiler.EngineProfiler` report.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.obs.export import write_trace
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

#: Default ring capacity: large enough for a full measurement window at
#: the default scales without evictions.
DEFAULT_TRACE_CAPACITY = 262144

SCHEMA = "repro-obs/1"


class Telemetry:
    """The assembled observability layer for one testbed run."""

    def __init__(self, sim: Simulator,
                 trace_capacity: int = DEFAULT_TRACE_CAPACITY,
                 categories: Optional[Iterable[str]] = None,
                 namespace: str = ""):
        self.sim = sim
        self.registry = MetricsRegistry()
        #: Metric-name prefix for everything this facade wires (multi-
        #: host runs give each host ``host.<name>`` so per-host metrics
        #: stay distinguishable when documents are merged).  Empty
        #: string preserves the historical flat names.
        self.namespace = namespace
        self._scope = (self.registry.scope(namespace) if namespace
                       else self.registry)
        self.tracer = Tracer(sim, capacity=trace_capacity)
        if categories is None:
            self.tracer.enable_all()
        else:
            self.tracer.enable(*categories)
        self.platform = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_platform(self, platform) -> None:
        """Install the tracer and registry on a Xen or NativeHost.

        Components read ``platform.trace`` / ``platform.metrics`` /
        ``platform.ledger`` dynamically, so everything constructed after
        (ports, guests, drivers) is wired automatically.
        """
        platform.trace = self.tracer
        platform.metrics = self._scope
        self.platform = platform
        if hasattr(platform, "blocked_interrupts"):
            self._scope.gauge("vmm.blocked_interrupts",
                              lambda: platform.blocked_interrupts)

    def attach_port(self, port) -> None:
        """Export one NIC port's device counters and trace its DMA path
        and mailboxes.

        Works for both SR-IOV ports (PF + VFs, DMA engine, loopback
        switch) and the VMDq 82598, which has only a subset of those
        surfaces.
        """
        index = getattr(port, "index", None)
        label = f"nic.port{index}" if index is not None else f"nic.{port.name}"
        scope = self._scope.scope(label)
        scope.gauge("wire_rx_pkts", lambda: port.wire_rx_packets)
        if hasattr(port, "wire_tx_packets"):
            scope.gauge("wire_tx_pkts", lambda: port.wire_tx_packets)
        if hasattr(port, "internal_loopback_packets"):
            scope.gauge("internal_loopback_pkts",
                        lambda: port.internal_loopback_packets)
        if hasattr(port, "default_queue_packets"):
            scope.gauge("default_queue_pkts",
                        lambda: port.default_queue_packets)
        datapath = getattr(port, "datapath", None)
        if datapath is not None:
            datapath.trace = self.tracer
            scope.gauge("dma_bytes", lambda: datapath.transferred_bytes.value)
            scope.gauge("dma_transfers", lambda: datapath.transfers.value)
        pf = getattr(port, "pf", None)
        if pf is not None:
            for function in [pf, *getattr(port, "vfs", [])]:
                self.attach_function(scope, function)

    def attach_function(self, port_scope, function) -> None:
        """Export one PF/VF's statistics block as gauges."""
        scope = port_scope.scope(function.name.split(".")[-1])
        scope.gauge("rx_pkts", lambda: function.rx_packets)
        scope.gauge("rx_bytes", lambda: function.rx_bytes)
        scope.gauge("rx_no_desc_drops", lambda: function.rx_no_desc_drops)
        scope.gauge("tx_pkts", lambda: function.tx_packets)
        scope.gauge("tx_bytes", lambda: function.tx_bytes)
        scope.gauge("interrupts_fired", lambda: function.throttle.fired)
        mailbox = getattr(function, "mailbox", None)
        if mailbox is not None:
            mailbox.trace = self.tracer

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def metrics_document(self, elapsed: float) -> dict:
        """The deterministic metrics snapshot (JSON-ready)."""
        ledger = getattr(self.platform, "ledger", None)
        exits = {}
        cycles = {}
        if ledger is not None:
            cycles = ledger.snapshot()
            for kind, (count, total) in ledger.exit_breakdown().items():
                exits[kind] = {
                    "count": count,
                    "cycles": total,
                    "cycles_per_second": total / elapsed if elapsed > 0 else 0.0,
                }
        return {
            "schema": SCHEMA,
            "window": {"elapsed": elapsed, "sim_time_end": self.sim.now},
            "metrics": self.registry.snapshot(self.sim.now),
            "cycles": cycles,
            "exits": exits,
            "trace": {
                "emitted": self.tracer.emitted,
                "evicted": self.tracer.evicted,
                "buffered": len(self.tracer),
            },
        }

    def metrics_json(self, elapsed: float) -> str:
        return json.dumps(self.metrics_document(elapsed), indent=2,
                          sort_keys=True)

    def write_metrics(self, path: str, elapsed: float) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.metrics_json(elapsed))

    def write_trace(self, path: str) -> str:
        """Write the captured trace; format chosen by extension."""
        return write_trace(path, self.tracer.events())
