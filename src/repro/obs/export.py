"""Trace export: Tracer events to Chrome trace-event JSON or JSONL.

The Chrome trace-event format (loadable in ``chrome://tracing`` and
https://ui.perfetto.dev) is a JSON array of objects with ``ph`` (phase),
``ts`` (microseconds), ``name``, ``cat``, ``pid`` and ``tid`` keys.  We
map:

* simulated seconds -> microsecond timestamps (``ts``);
* each trace *category* -> one named thread track (``tid``), announced
  with ``M``-phase ``thread_name`` metadata events;
* instant events -> ``ph: "i"`` (thread-scoped), span begin/end ->
  ``ph: "B"`` / ``ph: "E"``;
* event detail -> ``args``.

Everything is derived from simulated state only, so exports from
identical runs are byte-identical.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.sim.trace import PHASE_INSTANT, TraceEvent

#: The single process id all tracks live under.
PID = 0


def _json_safe(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool, type(None))):
        return value
    return str(value)


def chrome_trace_events(events: Iterable[TraceEvent]) -> List[dict]:
    """Render captured events as Chrome trace-event dicts.

    Thread ids are assigned per category in first-seen order (stable
    for a deterministic event stream) and named via metadata events so
    the viewer shows one labelled track per category.
    """
    tids: Dict[str, int] = {}
    body: List[dict] = []
    for event in events:
        tid = tids.get(event.category)
        if tid is None:
            tid = tids[event.category] = len(tids)
        entry = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": round(event.time * 1e6, 3),
            "pid": PID,
            "tid": tid,
        }
        if event.phase == PHASE_INSTANT:
            entry["s"] = "t"  # thread-scoped instant
        if event.detail:
            entry["args"] = {k: _json_safe(v) for k, v in event.detail}
        body.append(entry)
    meta = [
        {"name": "thread_name", "ph": "M", "pid": PID, "tid": tid,
         "args": {"name": category}}
        for category, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    return meta + body


def trace_to_chrome_json(events: Iterable[TraceEvent]) -> str:
    """The full export as a JSON array string."""
    return json.dumps(chrome_trace_events(events), indent=1, sort_keys=True)


def event_to_dict(event: TraceEvent) -> dict:
    """One event as a plain JSON-ready dict (the JSONL row format)."""
    row = {
        "time": event.time,
        "category": event.category,
        "name": event.name,
        "phase": event.phase,
    }
    if event.detail:
        row["detail"] = {k: _json_safe(v) for k, v in event.detail}
    return row


def trace_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One JSON object per line, in capture order."""
    return "\n".join(json.dumps(event_to_dict(e), sort_keys=True)
                     for e in events) + "\n"


def write_trace(path: str, events: Iterable[TraceEvent]) -> str:
    """Write a trace file, choosing the format by extension.

    ``.jsonl`` writes one event per line; anything else writes the
    Chrome trace-event JSON array.  Returns the format written.
    """
    events = list(events)
    if path.endswith(".jsonl"):
        payload, fmt = trace_to_jsonl(events), "jsonl"
    else:
        payload, fmt = trace_to_chrome_json(events), "chrome"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
    return fmt
