"""Unified observability for the simulated testbed.

The paper's key evidence is instrumentation output — the xentrace-based
VM-exit breakdown of Fig. 7 and the per-second migration timelines of
Figs. 20-21.  This package is the reproduction's equivalent layer:

* :mod:`repro.obs.registry` — the hierarchical
  :class:`MetricsRegistry`: components register Counter / Histogram /
  TimeWeighted / Series instruments under dotted names, snapshot-able
  to one deterministic JSON document.
* :mod:`repro.obs.ledger` — the :class:`CycleLedger`: every simulated
  cycle the cost model charges, attributed to a ``(domain, category)``
  pair, reconciling exactly with the
  :class:`~repro.vmm.vmexit.VmExitTracer`.
* :mod:`repro.obs.export` — Tracer events and spans rendered as Chrome
  trace-event JSON (``chrome://tracing`` / Perfetto) or JSONL.
* :mod:`repro.obs.profiler` — the opt-in host-side
  :class:`EngineProfiler`: wall-clock and event counts per simulator
  callback.
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade a testbed
  installs, exposed via the CLI's ``--metrics-json`` / ``--trace-out``
  / ``--profile`` flags.
* :mod:`repro.obs.campaign` — campaign-scale observability: streaming
  worker telemetry into a :class:`TelemetryHub`, the live
  ``--dashboard`` view, the ``campaign.jsonl`` journal and the
  ``repro report`` static-HTML renderer.

Everything defaults off: platforms carry null registries/tracers whose
methods are no-ops, so hot paths trace and count unconditionally at
negligible cost.
"""

from repro.obs.campaign import (
    JOURNAL_SCHEMA,
    SNAPSHOT_SCHEMA,
    SnapshotEmitter,
    TelemetryHub,
)
from repro.obs.export import (
    chrome_trace_events,
    trace_to_chrome_json,
    trace_to_jsonl,
    write_trace,
)
from repro.obs.ledger import EXIT_PREFIX, NULL_LEDGER, CycleLedger, NullCycleLedger
from repro.obs.profiler import EngineProfiler
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsError,
    MetricsRegistry,
    MetricsScope,
    NullRegistry,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "CycleLedger",
    "EXIT_PREFIX",
    "EngineProfiler",
    "JOURNAL_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "SnapshotEmitter",
    "TelemetryHub",
    "MetricsError",
    "MetricsRegistry",
    "MetricsScope",
    "NULL_LEDGER",
    "NULL_REGISTRY",
    "NullCycleLedger",
    "NullRegistry",
    "Telemetry",
    "chrome_trace_events",
    "trace_to_chrome_json",
    "trace_to_jsonl",
    "write_trace",
]
