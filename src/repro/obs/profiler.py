"""The host-side engine profiler: where does *wall-clock* time go?

The cycle ledger attributes **simulated** cycles; this attributes the
**host** CPU running the simulation itself — which event callbacks the
:class:`~repro.sim.engine.Simulator` dispatches most, and how much real
time each costs.  It is the tool for making the simulator faster (the
ROADMAP's hardware-speed goal), not for reproducing the paper's
numbers, and is strictly opt-in (``--profile``): installed, it hooks
the engine's dispatch seam; uninstalled, the engine pays one attribute
check per event.

Wall-clock readings are inherently nondeterministic, so profiler output
is never part of the metrics JSON document — it is printed as a
separate top-N table.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

from repro.sim.engine import EventHandle, Simulator


def _callback_name(callback: Callable[..., Any]) -> str:
    name = getattr(callback, "__qualname__", None)
    if name:
        return name
    # functools.partial and bound builders: fall back to the wrapped
    # function, then to the type.
    inner = getattr(callback, "func", None)
    if inner is not None:
        return _callback_name(inner)
    return type(callback).__name__


class EngineProfiler:
    """Per-callback-qualname wall-clock and event-count accounting."""

    def __init__(self, sim: Simulator, clock: Callable[[], float] = time.perf_counter):
        self.sim = sim
        self._clock = clock
        # qualname -> [count, wall_seconds]
        self._records: Dict[str, List[float]] = {}
        self._installed = False
        self._started_at = 0.0
        self.total_wall = 0.0

    # ------------------------------------------------------------------
    def install(self) -> "EngineProfiler":
        if not self._installed:
            self.sim.set_step_observer(self._observe)
            self._installed = True
            self._started_at = self._clock()
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.sim.set_step_observer(None)
            self._installed = False

    def _observe(self, handle: EventHandle) -> None:
        name = _callback_name(handle.callback)
        start = self._clock()
        try:
            handle.callback(*handle.args)
        finally:
            elapsed = self._clock() - start
            record = self._records.get(name)
            if record is None:
                record = self._records[name] = [0, 0.0]
            record[0] += 1
            record[1] += elapsed
            self.total_wall += elapsed

    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return int(sum(r[0] for r in self._records.values()))

    def rows(self) -> List[Tuple[str, int, float]]:
        """(qualname, count, wall seconds), heaviest first."""
        return sorted(((name, int(r[0]), r[1])
                       for name, r in self._records.items()),
                      key=lambda row: (-row[2], row[0]))

    def table(self, top: int = 15) -> str:
        """The printed top-N report."""
        rows = self.rows()
        lines = ["engine profile (host wall-clock per event callback):",
                 f"{'CALLBACK':<48}{'EVENTS':>10}{'WALL ms':>12}{'us/EV':>9}"]
        for name, count, wall in rows[:top]:
            per_event = wall / count * 1e6 if count else 0.0
            shown = name if len(name) <= 47 else name[:44] + "..."
            lines.append(f"{shown:<48}{count:>10}{wall * 1e3:>12.2f}"
                         f"{per_event:>9.1f}")
        hidden = len(rows) - top
        if hidden > 0:
            lines.append(f"  ... {hidden} more callbacks")
        lines.append(f"{'TOTAL':<48}{self.total_events:>10}"
                     f"{self.total_wall * 1e3:>12.2f}")
        return "\n".join(lines)
