"""The cycle ledger: every simulated CPU cycle, attributed.

The paper's Fig. 7 breaks VM-exit handling down by exit reason, and its
Fig. 12 splits CPU utilization per domain.  Both are *attribution*
questions: which domain did the cost model charge, and for what?  The
:class:`CycleLedger` answers them directly — hot paths call
:meth:`CycleLedger.charge` with a ``(domain, category)`` pair alongside
the existing core accounting, and the figures fall out of a snapshot
instead of bespoke bookkeeping in the experiment runner.

Category names are dotted and hierarchical, e.g.::

    exit.apic-access-eoi      hypervisor cycles servicing EOI exits
    exit.external-interrupt   the external-interrupt exit + injection
    guest.rx                  guest-side packet processing
    netback.copy              dom0 copy work for the PV split driver
    migration.precopy         dom0 cycles moving pre-copy data

``exit.*`` categories mirror :class:`repro.vmm.vmexit.VmExitKind`
values one-to-one, so ledger totals reconcile exactly with the
:class:`~repro.vmm.vmexit.VmExitTracer` aggregate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Prefix under which VM-exit cycles are recorded.
EXIT_PREFIX = "exit."


class CycleLedger:
    """Per-(domain, category) cycle and event attribution."""

    __slots__ = ("_cells",)

    def __init__(self) -> None:
        # (domain, category) -> [count, cycles]
        self._cells: Dict[Tuple[str, str], List[float]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def charge(self, domain: str, category: str, cycles: float,
               count: int = 1) -> None:
        """Attribute ``cycles`` (and ``count`` events) to a pair."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        cell = self._cells.get((domain, category))
        if cell is None:
            cell = self._cells[(domain, category)] = [0, 0.0]
        cell[0] += count
        cell[1] += cycles

    def reset(self) -> None:
        self._cells.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cycles(self, domain: Optional[str] = None,
               category: Optional[str] = None) -> float:
        """Total cycles, optionally filtered by domain and/or category."""
        return sum(cell[1] for (dom, cat), cell in self._cells.items()
                   if (domain is None or dom == domain)
                   and (category is None or cat == category))

    def count(self, domain: Optional[str] = None,
              category: Optional[str] = None) -> int:
        """Total event count, with the same filters as :meth:`cycles`."""
        return int(sum(cell[0] for (dom, cat), cell in self._cells.items()
                       if (domain is None or dom == domain)
                       and (category is None or cat == category)))

    @property
    def total_cycles(self) -> float:
        return sum(cell[1] for cell in self._cells.values())

    def domains(self) -> List[str]:
        return sorted({dom for dom, _ in self._cells})

    def categories(self, prefix: Optional[str] = None) -> List[str]:
        return sorted({cat for _, cat in self._cells
                       if prefix is None or cat.startswith(prefix)})

    def by_category(self, prefix: Optional[str] = None
                    ) -> Dict[str, Tuple[int, float]]:
        """``{category: (count, cycles)}`` summed across domains."""
        out: Dict[str, List[float]] = {}
        for (_, cat), cell in self._cells.items():
            if prefix is not None and not cat.startswith(prefix):
                continue
            acc = out.setdefault(cat, [0, 0.0])
            acc[0] += cell[0]
            acc[1] += cell[1]
        return {cat: (int(acc[0]), acc[1]) for cat, acc in sorted(out.items())}

    def by_domain(self) -> Dict[str, float]:
        """``{domain: cycles}`` summed across categories."""
        out: Dict[str, float] = {}
        for (dom, _), cell in self._cells.items():
            out[dom] = out.get(dom, 0.0) + cell[1]
        return dict(sorted(out.items()))

    def exit_breakdown(self) -> Dict[str, Tuple[int, float]]:
        """Fig. 7's instrument: ``{exit-kind: (count, cycles)}`` with the
        ``exit.`` prefix stripped, summed across domains."""
        return {cat[len(EXIT_PREFIX):]: value
                for cat, value in self.by_category(EXIT_PREFIX).items()}

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A deterministic, JSON-ready document of the full ledger."""
        domains: Dict[str, dict] = {}
        for (dom, cat), cell in sorted(self._cells.items()):
            domains.setdefault(dom, {})[cat] = {
                "count": int(cell[0]),
                "cycles": cell[1],
            }
        return {
            "domains": domains,
            "by_category": {cat: {"count": count, "cycles": cyc}
                            for cat, (count, cyc) in self.by_category().items()},
            "total_cycles": self.total_cycles,
        }


class NullCycleLedger:
    """The no-op ledger: charge() is free, snapshots are empty."""

    def charge(self, domain: str, category: str, cycles: float,
               count: int = 1) -> None:
        pass

    def reset(self) -> None:
        pass

    def cycles(self, domain=None, category=None) -> float:
        return 0.0

    def count(self, domain=None, category=None) -> int:
        return 0

    @property
    def total_cycles(self) -> float:
        return 0.0

    def domains(self) -> list:
        return []

    def categories(self, prefix=None) -> list:
        return []

    def by_category(self, prefix=None) -> dict:
        return {}

    def by_domain(self) -> dict:
        return {}

    def exit_breakdown(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}


#: Shared default instance (stateless, so sharing is safe).
NULL_LEDGER = NullCycleLedger()
