"""The metrics registry: every instrument, one namespace, one snapshot.

Components register :class:`~repro.sim.stats.Counter`/:class:`Histogram`
/:class:`TimeWeighted`/:class:`Series` instruments under dotted names
(``nic.port0.rx_pkts``, ``netback.thread3.batches``,
``guest.vm1.interrupts``) and the registry renders them all into one
deterministic JSON document.  Existing ad-hoc component counters (plain
integer attributes all over the device and driver models) are exported
without touching their hot paths via callback *gauges*.

The default platform registry is :data:`NULL_REGISTRY`: registration
returns a shared no-op instrument and snapshots are empty, so
instrumented hot paths cost one no-op method call when telemetry is
off.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.stats import Counter, Histogram, Series, TimeWeighted


class MetricsError(ValueError):
    """Registration conflict: same name, different instrument type."""


class MetricsRegistry:
    """A flat namespace of instruments with hierarchical dotted names."""

    def __init__(self) -> None:
        # name -> (kind, instrument-or-callback)
        self._instruments: Dict[str, Tuple[str, Any]] = {}

    # ------------------------------------------------------------------
    # registration (idempotent per name; conflicting kinds raise)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._register(name, "counter", lambda: Counter(name))

    def histogram(self, name: str, bin_width: float = 1e-5) -> Histogram:
        return self._register(name, "histogram",
                              lambda: Histogram(bin_width, name))

    def time_weighted(self, name: str, initial: float = 0.0,
                      start_time: float = 0.0) -> TimeWeighted:
        return self._register(name, "time_weighted",
                              lambda: TimeWeighted(initial, start_time))

    def series(self, name: str) -> Series:
        return self._register(name, "series", lambda: Series(name))

    def gauge(self, name: str, read: Callable[[], Any]) -> None:
        """Register a read-at-snapshot callback for an existing counter
        kept elsewhere (e.g. ``lambda: vf.rx_packets``)."""
        existing = self._instruments.get(name)
        if existing is not None and existing[0] != "gauge":
            raise MetricsError(f"metric {name!r} already registered "
                               f"as {existing[0]}")
        self._instruments[name] = ("gauge", read)

    def scope(self, prefix: str) -> "MetricsScope":
        """A view registering everything under ``prefix.``."""
        return MetricsScope(self, prefix)

    def _register(self, name: str, kind: str, factory: Callable[[], Any]):
        existing = self._instruments.get(name)
        if existing is not None:
            if existing[0] != kind:
                raise MetricsError(f"metric {name!r} already registered "
                                   f"as {existing[0]}, not {kind}")
            return existing[1]
        instrument = factory()
        self._instruments[name] = (kind, instrument)
        return instrument

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[Any]:
        entry = self._instruments.get(name)
        return entry[1] if entry else None

    def names(self) -> list:
        return sorted(self._instruments)

    def snapshot(self, now: float = 0.0) -> Dict[str, dict]:
        """``{name: {"type": ..., ...values...}}``, sorted by name.

        ``now`` is the simulated time the snapshot represents, used to
        close out time-weighted means.  The result contains only
        deterministic simulation quantities — never host wall-clock —
        so identical runs snapshot byte-identically.
        """
        out: Dict[str, dict] = {}
        for name in sorted(self._instruments):
            kind, instrument = self._instruments[name]
            out[name] = self._render(kind, instrument, now)
        return out

    def to_json(self, now: float = 0.0) -> str:
        return json.dumps(self.snapshot(now), indent=2, sort_keys=True)

    @staticmethod
    def _render(kind: str, instrument: Any, now: float) -> dict:
        if kind == "counter":
            return {"type": "counter", "value": instrument.value}
        if kind == "gauge":
            value = instrument()
            if not isinstance(value, (int, float, str, bool, type(None))):
                value = str(value)
            return {"type": "gauge", "value": value}
        if kind == "histogram":
            doc = {"type": "histogram", "count": instrument.count,
                   "mean": instrument.mean, "stdev": instrument.stdev}
            if instrument.count:
                doc["p50"] = instrument.percentile(50)
                doc["p99"] = instrument.percentile(99)
            return doc
        if kind == "time_weighted":
            return {"type": "time_weighted",
                    "current": instrument.current,
                    "min": instrument.minimum,
                    "max": instrument.maximum,
                    "mean": instrument.mean(now)}
        if kind == "series":
            doc = {"type": "series"}
            doc.update(instrument.summary(percentiles=(50, 99)))
            if len(instrument):
                doc["first_time"] = instrument.times[0]
                doc["last_time"] = instrument.times[-1]
                doc["last_value"] = instrument.values[-1]
            return doc
        raise MetricsError(f"unknown instrument kind {kind!r}")


class MetricsScope:
    """A prefix-applying view over a registry (or another scope)."""

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def histogram(self, name: str, bin_width: float = 1e-5) -> Histogram:
        return self._registry.histogram(self._name(name), bin_width)

    def time_weighted(self, name: str, initial: float = 0.0,
                      start_time: float = 0.0) -> TimeWeighted:
        return self._registry.time_weighted(self._name(name), initial,
                                            start_time)

    def series(self, name: str) -> Series:
        return self._registry.series(self._name(name))

    def gauge(self, name: str, read: Callable[[], Any]) -> None:
        self._registry.gauge(self._name(name), read)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, self._name(prefix))


class _NullInstrument:
    """Accepts any instrument method call and does nothing.

    Carries a ``value`` attribute so hot paths may use the counter
    fast path (``instrument.value += n``, a plain attribute add)
    instead of a method call; the written value is never read.  Null
    counters are therefore handed out one per registration — a shared
    instance would be a data race in spirit, even if nothing reads it.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def add(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record(self, *args: Any, **kwargs: Any) -> None:
        pass

    def update(self, *args: Any, **kwargs: Any) -> None:
        pass

    def reset(self, *args: Any, **kwargs: Any) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The no-op registry: the disabled-telemetry fast path."""

    def counter(self, name: str) -> _NullInstrument:
        return _NullInstrument()

    def histogram(self, name: str, bin_width: float = 1e-5) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def time_weighted(self, name: str, initial: float = 0.0,
                      start_time: float = 0.0) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, read: Callable[[], Any]) -> None:
        pass

    def scope(self, prefix: str) -> "NullRegistry":
        return self

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def get(self, name: str) -> None:
        return None

    def names(self) -> list:
        return []

    def snapshot(self, now: float = 0.0) -> dict:
        return {}

    def to_json(self, now: float = 0.0) -> str:
        return "{}"


#: Shared default instance (stateless, so sharing is safe).
NULL_REGISTRY = NullRegistry()
