"""``repro report``: a campaign journal rendered as standalone HTML.

The input is the ``campaign.jsonl`` journal the
:class:`~repro.obs.campaign.hub.TelemetryHub` wrote; the output is one
self-contained HTML file — inline CSS, a dozen lines of inline JS for
table sorting, SVG sparklines — that opens anywhere with no server, no
CDN, no dependencies.  Sections:

* campaign header: totals, wall time, outcome counts, respawn/corrupt
  counters from the closing ``campaign_end`` record;
* the per-cell table: status, attempts, wall runtime, throughput, CPU,
  loss, final simulated time — with an inline events/s timeline per
  cell built from its ``progress`` heartbeats;
* aggregate metric table: min/mean/p50/p99/max of every scalar metric
  across cells (:meth:`repro.sim.stats.Series.summary`);
* regression deltas: given ``--baseline`` (a prior journal), per-key
  throughput and runtime deltas, worst first.

Loading is strict (:func:`load_journal` validates the schema header
and every record) because CI asserts journals validate; *rendering*
is tolerant — a journal truncated by SIGKILL still reports whatever
settled before the kill.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.campaign.snapshot import (JOURNAL_SCHEMA, SnapshotError,
                                         validate_record)
from repro.sim.stats import Series


class JournalError(ValueError):
    """An unreadable or schema-foreign campaign journal."""


def load_journal(path, *, strict: bool = True) -> List[Dict[str, Any]]:
    """Parse and validate a journal; returns its records in order.

    ``strict=False`` skips invalid lines (the torn tail of a killed
    writer) instead of raising, but the schema header is always
    enforced — a foreign file should never render as an empty report.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}")
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = validate_record(json.loads(line), journal=True)
        except (ValueError, SnapshotError) as exc:
            if strict:
                raise JournalError(f"{path}:{number}: {exc}")
            continue
        records.append(record)
    if not records:
        raise JournalError(f"journal {path} contains no records")
    head = records[0]
    if head.get("kind") != "campaign_start" \
            or head.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"journal {path} does not open with a {JOURNAL_SCHEMA!r} "
            f"campaign_start record (got kind={head.get('kind')!r}, "
            f"schema={head.get('schema')!r})")
    return records


class CellReport:
    """One cell's journal records replayed into report rows."""

    def __init__(self, key: str):
        self.key = key
        self.status = "pending"
        self.cached = False
        self.attempts = 0
        self.error: Optional[str] = None
        self.started_wall: Optional[float] = None
        self.ended_wall: Optional[float] = None
        self.sim_now: float = 0.0
        self.result: Dict[str, Any] = {}
        self.metrics: Dict[str, Any] = {}
        #: (wall, events/s) heartbeat samples for the timeline.
        self.timeline: List[Tuple[float, float]] = []

    @property
    def runtime(self) -> Optional[float]:
        if self.started_wall is None or self.ended_wall is None:
            return None
        return self.ended_wall - self.started_wall

    @property
    def throughput_bps(self) -> float:
        return float(self.result.get("throughput_bps") or 0.0)


def replay(records: List[Dict[str, Any]]) -> Dict[str, CellReport]:
    """Journal records -> per-key cell reports, in first-seen order."""
    cells: Dict[str, CellReport] = {}

    def cell(key: str) -> CellReport:
        if key not in cells:
            cells[key] = CellReport(key)
        return cells[key]

    for record in records:
        kind = record["kind"]
        key = record.get("key")
        if not isinstance(key, str):
            continue
        state = cell(key)
        wall = float(record["wall"])
        if kind == "cache_hit":
            state.status, state.cached = "ok", True
            state.started_wall = state.started_wall or wall
            state.ended_wall = wall
        elif kind == "cache_quarantined":
            state.status = "quarantined"
        elif kind == "task_running":
            state.status = "running"
            state.attempts = int(record.get("attempt") or 0)
            if state.started_wall is None:
                state.started_wall = wall
        elif kind == "progress":
            state.timeline.append(
                (wall, float(record.get("events_per_sec") or 0.0)))
            state.sim_now = float(record.get("sim_now") or state.sim_now)
        elif kind == "task_end":
            state.result = dict(record.get("result") or {})
            state.metrics = dict(record.get("metrics") or {})
            state.sim_now = float(record.get("sim_now") or state.sim_now)
        elif kind == "task_terminal":
            state.status = record.get("status") or state.status
            state.attempts = int(record.get("attempts") or state.attempts)
            state.error = record.get("error")
            state.ended_wall = wall
    return cells


def aggregate_metrics(cells: Dict[str, CellReport]
                      ) -> Dict[str, Dict[str, float]]:
    """Cross-cell scalar-metric summaries (min/mean/p50/p99/max)."""
    folded: Dict[str, Series] = {}
    for cell in cells.values():
        for name, doc in cell.metrics.items():
            if not isinstance(doc, dict):
                continue
            value = doc.get("value", doc.get("mean"))
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                continue
            series = folded.setdefault(name, Series(name))
            series.record(float(len(series)), float(value))
    return {name: series.summary(percentiles=(50, 99))
            for name, series in sorted(folded.items())}


def regression_rows(cells: Dict[str, CellReport],
                    baseline: Dict[str, CellReport]
                    ) -> List[List[object]]:
    """Per-key deltas vs a prior journal, worst throughput drop first."""
    rows = []
    for key, cell in cells.items():
        prior = baseline.get(key)
        if prior is None or not cell.result or not prior.result:
            continue
        base_bps = prior.throughput_bps
        delta_bps = (cell.throughput_bps - base_bps) / base_bps * 100 \
            if base_bps else 0.0
        base_rt, now_rt = prior.runtime, cell.runtime
        delta_rt = ((now_rt - base_rt) / base_rt * 100
                    if base_rt and now_rt is not None else None)
        rows.append([key, base_bps / 1e9, cell.throughput_bps / 1e9,
                     delta_bps, delta_rt])
    return sorted(rows, key=lambda row: row[3])


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_CSS = """
body{font:14px/1.45 -apple-system,Segoe UI,sans-serif;margin:2em auto;
     max-width:72em;padding:0 1em;color:#1a1a2e;background:#fafafa}
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em;
   border-bottom:1px solid #ddd;padding-bottom:.2em}
table{border-collapse:collapse;width:100%;font-size:13px;background:#fff}
th,td{border:1px solid #e3e3e8;padding:.25em .6em;text-align:right;
      white-space:nowrap}
th{background:#eef;cursor:pointer;position:sticky;top:0}
td:first-child,th:first-child{text-align:left;font-family:ui-monospace,
      monospace}
tr.bad td{background:#fde8e8}tr.hit td:first-child{color:#567}
.badge{display:inline-block;padding:0 .5em;border-radius:.8em;
      font-size:12px;color:#fff}
.ok{background:#2e9e5b}.retried{background:#c89a2b}
.timed_out,.failed{background:#c0392b}.quarantined{background:#8e44ad}
.running,.pending{background:#7f8c8d}
svg{vertical-align:middle}details{margin:.6em 0}
.meta{color:#667;font-size:13px}
"""

_JS = """
document.querySelectorAll('th').forEach(function(th){
  th.addEventListener('click', function(){
    var table = th.closest('table');
    var idx = Array.from(th.parentNode.children).indexOf(th);
    var rows = Array.from(table.querySelectorAll('tbody tr'));
    var asc = th.dataset.asc !== '1';
    th.dataset.asc = asc ? '1' : '0';
    rows.sort(function(a, b){
      var x = a.children[idx].dataset.v ?? a.children[idx].textContent;
      var y = b.children[idx].dataset.v ?? b.children[idx].textContent;
      var nx = parseFloat(x), ny = parseFloat(y);
      if (!isNaN(nx) && !isNaN(ny)) return asc ? nx - ny : ny - nx;
      return asc ? x.localeCompare(y) : y.localeCompare(x);
    });
    rows.forEach(function(r){ r.parentNode.appendChild(r); });
  });
});
"""


def _spark_svg(samples: List[Tuple[float, float]], width: int = 120,
               height: int = 18) -> str:
    """A tiny inline SVG polyline of (wall, rate) heartbeat samples."""
    if len(samples) < 2:
        return ""
    t0, t1 = samples[0][0], samples[-1][0]
    top = max(rate for _, rate in samples) or 1.0
    span = (t1 - t0) or 1.0
    points = " ".join(
        f"{(wall - t0) / span * width:.1f},"
        f"{height - rate / top * (height - 2):.1f}"
        for wall, rate in samples)
    return (f'<svg width="{width}" height="{height}">'
            f'<polyline points="{points}" fill="none" '
            f'stroke="#4a6fa5" stroke-width="1.2"/></svg>')


def _fmt(value, digits=2) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    return str(value)


def _cell_rows(cells: Dict[str, CellReport]) -> List[str]:
    rows = []
    for key, cell in sorted(cells.items()):
        result = cell.result
        bad = cell.status in ("timed_out", "failed")
        classes = ("bad" if bad else "hit" if cell.cached else "")
        gbps = (cell.throughput_bps / 1e9) if result else None
        title = html.escape(cell.error or "")
        rows.append(
            f'<tr class="{classes}" title="{title}">'
            f'<td>{html.escape(key[:16])}</td>'
            f'<td data-v="{cell.status}"><span class="badge '
            f'{cell.status}">{cell.status}</span>'
            f'{" (cached)" if cell.cached else ""}</td>'
            f'<td>{cell.attempts}</td>'
            f'<td data-v="{cell.runtime or -1}">'
            f'{_fmt(cell.runtime)}</td>'
            f'<td data-v="{gbps if gbps is not None else -1}">'
            f'{_fmt(gbps, 3)}</td>'
            f'<td>{_fmt(result.get("cpu_percent") if result else None, 1)}'
            f'</td>'
            f'<td>{_fmt(result.get("loss_rate", 0) * 100 if result else None, 2)}'
            f'</td>'
            f'<td>{_fmt(cell.sim_now, 2)}</td>'
            f'<td data-v="{len(cell.timeline)}">'
            f'{_spark_svg(cell.timeline)}</td></tr>')
    return rows


def render_report(records: List[Dict[str, Any]],
                  baseline_records: Optional[List[Dict[str, Any]]] = None,
                  title: str = "campaign report") -> str:
    """The full standalone HTML document as a string."""
    cells = replay(records)
    head = records[0]
    tail = records[-1] if records[-1]["kind"] == "campaign_end" else None
    walls = [record["wall"] for record in records]
    duration = max(walls) - min(walls) if walls else 0.0
    counts: Dict[str, int] = {}
    for cell in cells.values():
        counts[cell.status] = counts.get(cell.status, 0) + 1
    stats = (tail or {}).get("stats") or {}

    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='meta'>{len(cells)} cells / {head.get('total', '?')} "
        f"planned &middot; {duration:.1f}s of journal wall time &middot; "
        f"{head.get('workers', 1)} workers"
        f"{' &middot; resumed' if head.get('resumed') else ''}"
        f"{' &middot; <b>campaign did not close</b>' if tail is None else ''}"
        "</p>",
        "<p>" + " ".join(
            f'<span class="badge {status}">{status} {count}</span>'
            for status, count in sorted(counts.items())) + "</p>",
    ]
    if stats:
        parts.append("<p class='meta'>closing stats: " + ", ".join(
            f"{key}={value}" for key, value in sorted(stats.items()))
            + "</p>")

    parts.append("<h2>cells</h2><table><thead><tr>"
                 "<th>key</th><th>status</th><th>att</th><th>wall s</th>"
                 "<th>Gbps</th><th>CPU%</th><th>loss%</th><th>sim s</th>"
                 "<th>events/s timeline</th></tr></thead><tbody>")
    parts += _cell_rows(cells)
    parts.append("</tbody></table>")

    if baseline_records is not None:
        parts.append("<h2>deltas vs baseline</h2>")
        rows = regression_rows(cells, replay(baseline_records))
        if rows:
            parts.append(
                "<table><thead><tr><th>key</th><th>base Gbps</th>"
                "<th>now Gbps</th><th>&Delta; bps %</th>"
                "<th>&Delta; runtime %</th></tr></thead><tbody>")
            parts += [
                f"<tr{' class=bad' if delta_bps < -1 else ''}>"
                f"<td>{html.escape(key[:16])}</td><td>{_fmt(base, 3)}</td>"
                f"<td>{_fmt(now, 3)}</td><td>{_fmt(delta_bps)}</td>"
                f"<td>{_fmt(delta_rt)}</td></tr>"
                for key, base, now, delta_bps, delta_rt in rows]
            parts.append("</tbody></table>")
        else:
            parts.append("<p class='meta'>no overlapping keys with "
                         "results in both journals.</p>")

    aggregates = aggregate_metrics(cells)
    if aggregates:
        parts.append(f"<h2>metrics across cells</h2><details>"
                     f"<summary>{len(aggregates)} metrics "
                     "(min / mean / p50 / p99 / max over cells)"
                     "</summary><table><thead><tr><th>metric</th>"
                     "<th>cells</th><th>min</th><th>mean</th><th>p50</th>"
                     "<th>p99</th><th>max</th></tr></thead><tbody>")
        for name, summary in aggregates.items():
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{summary['count']}</td>"
                f"<td>{_fmt(summary.get('min'))}</td>"
                f"<td>{_fmt(summary.get('mean'))}</td>"
                f"<td>{_fmt(summary.get('p50'))}</td>"
                f"<td>{_fmt(summary.get('p99'))}</td>"
                f"<td>{_fmt(summary.get('max'))}</td></tr>")
        parts.append("</tbody></table></details>")

    parts.append(f"<script>{_JS}</script></body></html>")
    return "\n".join(parts)


def write_report(journal_path, out_path=None, baseline_path=None) -> Path:
    """Load, render, write; returns the output path."""
    journal_path = Path(journal_path)
    records = load_journal(journal_path, strict=False)
    baseline = (load_journal(baseline_path, strict=False)
                if baseline_path else None)
    out = Path(out_path) if out_path \
        else journal_path.with_suffix(".html")
    out.write_text(render_report(records, baseline,
                                 title=f"campaign report — "
                                       f"{journal_path.name}"),
                   encoding="utf-8")
    return out
