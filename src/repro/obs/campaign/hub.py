"""The parent-side telemetry hub: ingest, journal, aggregate.

One :class:`TelemetryHub` lives in the campaign parent for the length
of a ``repro sweep``/``repro figures`` run.  It is fed from three
directions:

* the **runner** reports campaign shape (``campaign_start``), cache
  hits and quarantined cache entries;
* the **supervisor** reports task submissions and terminal outcomes
  (:meth:`task_running` / :meth:`task_terminal`) and calls
  :meth:`poll` from its watchdog loop;
* the **workers** stream ``task_start``/``progress``/``task_end``
  records through spool files (:mod:`repro.obs.campaign.snapshot`)
  that :meth:`poll` tails incrementally, byte-offset per file, so a
  torn final line is retried on the next poll and nothing is read
  twice.

Every record — hub-originated or ingested — is stamped with host
wall-clock and a monotonic journal sequence number, then appended to
the ``campaign.jsonl`` journal and folded into the in-memory fleet
aggregates the dashboard renders.  The journal is append-only and
flushed per record: a SIGKILL loses at most the record being written,
and a ``--resume`` of the same campaign reopens the same journal in
append mode, skipping re-emission for cells whose successful terminal
records are already present (no duplicates, no losses).

The hub is observation-only by construction: it never blocks a worker
(spool writes are the workers' own, journal writes are the parent's),
never feeds anything back into the engine, and swallows its own I/O
errors (counted in :attr:`journal_errors`) rather than failing a
campaign over a full disk.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.campaign.snapshot import (JOURNAL_SCHEMA, SnapshotError,
                                         validate_record)
from repro.sim.stats import Series

#: Cell states the task grid distinguishes.
CELL_STATES = ("pending", "running", "ok", "retried", "timed_out",
               "failed", "quarantined")

#: Metric-name prefixes surfaced as live dashboard counters.
FAULT_PREFIX = "faults."


class CellState:
    """Everything the hub knows about one campaign cell."""

    __slots__ = ("key", "status", "cached", "attempts", "started_wall",
                 "ended_wall", "sim_now", "events_executed",
                 "events_per_sec", "result", "error", "faults_fired")

    def __init__(self, key: str):
        self.key = key
        self.status = "pending"
        self.cached = False
        self.attempts = 0
        self.started_wall: Optional[float] = None
        self.ended_wall: Optional[float] = None
        self.sim_now: float = 0.0
        self.events_executed: int = 0
        self.events_per_sec: float = 0.0
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.faults_fired: int = 0

    @property
    def runtime(self) -> Optional[float]:
        if self.started_wall is None or self.ended_wall is None:
            return None
        return self.ended_wall - self.started_wall

    @property
    def done(self) -> bool:
        return self.status in ("ok", "retried", "timed_out", "failed")


class TelemetryHub:
    """Fleet-level telemetry: journal writer + live aggregates."""

    def __init__(self, journal_path: Optional[os.PathLike] = None,
                 spool_dir: Optional[os.PathLike] = None,
                 dashboard=None, clock=time.time):
        self.journal_path = Path(journal_path) if journal_path else None
        if spool_dir is None and self.journal_path is not None:
            spool_dir = self.journal_path.with_name(
                self.journal_path.name + ".spool")
        self.spool_dir = Path(spool_dir) if spool_dir else None
        self.dashboard = dashboard
        self._clock = clock
        self._journal = None
        self._seq = 0
        self.journal_errors = 0
        #: Keys whose *successful* terminal record is already journaled
        #: (from a prior run being resumed): suppress re-emission.
        self._settled: set = set()
        self._offsets: Dict[Path, int] = {}
        self.cells: Dict[str, CellState] = {}
        self.total = 0
        self.workers = 1
        self.started_wall = clock()
        #: (wall, fleet events/s) samples for the throughput sparkline.
        self.throughput_history: List[Tuple[float, float]] = []
        #: Cross-cell metric values from task_end snapshots.
        self._metric_values: Dict[str, Series] = {}
        self.fault_counts: Dict[str, float] = {}
        self.audits_passed = 0
        self._load_existing()
        self._open_journal()

    # ------------------------------------------------------------------
    # journal plumbing
    # ------------------------------------------------------------------
    def _load_existing(self) -> None:
        """Resume support: learn which cells a prior run already
        settled, so their records are not duplicated."""
        if self.journal_path is None or not self.journal_path.exists():
            return
        try:
            text = self.journal_path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail of a killed writer
            kind = record.get("kind")
            key = record.get("key")
            if not isinstance(key, str):
                continue
            if kind == "cache_hit" or (
                    kind == "task_terminal"
                    and record.get("status") in ("ok", "retried")):
                self._settled.add(key)

    def _open_journal(self) -> None:
        if self.journal_path is None:
            return
        try:
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
            self._journal = open(self.journal_path, "a", encoding="utf-8")
        except OSError:
            self.journal_errors += 1
            self._journal = None

    def _append(self, record: Dict[str, Any]) -> None:
        """Stamp and journal one record (in-memory state is updated by
        the caller; this is purely the durable trail)."""
        self._seq += 1
        record = dict(record)
        record["wall"] = self._clock()
        record["seq"] = self._seq
        if self._journal is None:
            return
        try:
            self._journal.write(json.dumps(record, sort_keys=True) + "\n")
            self._journal.flush()
        except (OSError, ValueError):
            self.journal_errors += 1

    def _cell(self, key: str) -> CellState:
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CellState(key)
        return cell

    # ------------------------------------------------------------------
    # runner-facing events
    # ------------------------------------------------------------------
    def campaign_start(self, total: int, workers: int = 1,
                       command: Optional[Dict[str, Any]] = None,
                       resumed: bool = False) -> None:
        self.total = total
        self.workers = max(1, workers)
        record: Dict[str, Any] = {"schema": JOURNAL_SCHEMA,
                                  "kind": "campaign_start", "total": total,
                                  "workers": self.workers,
                                  "resumed": bool(resumed or self._settled)}
        if command:
            record["command"] = command
        self._append(record)
        self._render()

    def cache_hit(self, key: str) -> None:
        cell = self._cell(key)
        cell.status = "ok"
        cell.cached = True
        now = self._clock()
        cell.started_wall = cell.started_wall or now
        cell.ended_wall = now
        if key not in self._settled:
            self._settled.add(key)
            self._append({"kind": "cache_hit", "key": key})
        self._render()

    def cache_quarantined(self, key: str) -> None:
        cell = self._cell(key)
        cell.status = "quarantined"
        self._append({"kind": "cache_quarantined", "key": key})
        self._render()

    # ------------------------------------------------------------------
    # supervisor-facing events
    # ------------------------------------------------------------------
    def task_running(self, key: str, attempt: int) -> None:
        cell = self._cell(key)
        cell.status = "running"
        cell.attempts = attempt
        if cell.started_wall is None:
            cell.started_wall = self._clock()
        self._append({"kind": "task_running", "key": key,
                      "attempt": attempt})
        self._render()

    def task_terminal(self, outcome) -> None:
        """A :class:`~repro.sweep.supervise.TaskOutcome` reached its
        terminal state."""
        self.poll()  # drain the worker's final spool records first
        cell = self._cell(outcome.key)
        cell.status = outcome.status
        cell.attempts = outcome.attempts
        cell.error = outcome.error
        cell.ended_wall = self._clock()
        if outcome.key in self._settled:
            self._render()
            return
        if outcome.status in ("ok", "retried"):
            self._settled.add(outcome.key)
        record = {"kind": "task_terminal", "key": outcome.key,
                  "status": outcome.status, "attempts": outcome.attempts}
        if outcome.error is not None:
            record["error"] = outcome.error
        self._append(record)
        self._render()

    def finalize(self, stats=None) -> None:
        """Campaign end: drain spools, journal the closing record,
        fsync, and tear the dashboard down."""
        self.poll()
        record: Dict[str, Any] = {"kind": "campaign_end"}
        if stats is not None:
            record["stats"] = {
                field: getattr(stats, field)
                for field in ("total", "hits", "misses", "executed", "ok",
                              "retried", "timed_out", "failed", "respawns",
                              "corrupt", "wall_s", "peak_workers")
                if hasattr(stats, field)}
        self._append(record)
        if self._journal is not None:
            try:
                self._journal.flush()
                os.fsync(self._journal.fileno())
                self._journal.close()
            except (OSError, ValueError):
                self.journal_errors += 1
            self._journal = None
        self._sweep_spool()
        if self.dashboard is not None:
            self.dashboard.finalize(self)

    def _sweep_spool(self) -> None:
        """Remove fully-consumed spool files (best-effort hygiene; a
        crash leaves them for the resumed run's hub to re-tail)."""
        if self.spool_dir is None or not self.spool_dir.exists():
            return
        try:
            for path in self.spool_dir.glob("*.jsonl"):
                path.unlink()
            self.spool_dir.rmdir()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # spool ingestion
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Tail every spool file; ingest, journal and aggregate any
        complete new lines.  Returns the number of records ingested."""
        ingested = 0
        if self.spool_dir is not None and self.spool_dir.exists():
            try:
                paths = sorted(self.spool_dir.glob("*.jsonl"))
            except OSError:
                paths = []
            for path in paths:
                ingested += self._tail(path)
        if ingested:
            self._sample_throughput()
        self._render()
        return ingested

    def _tail(self, path: Path) -> int:
        offset = self._offsets.get(path, 0)
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            return 0
        if not chunk:
            return 0
        # Only complete lines are consumed; a torn tail stays unread
        # until its newline arrives (or never does — a killed worker).
        end = chunk.rfind(b"\n")
        if end < 0:
            return 0
        self._offsets[path] = offset + end + 1
        count = 0
        for line in chunk[:end + 1].splitlines():
            try:
                record = validate_record(json.loads(line.decode("utf-8")))
            except (ValueError, SnapshotError):
                continue
            self._ingest(record)
            count += 1
        return count

    def _ingest(self, record: Dict[str, Any]) -> None:
        key = record["key"]
        kind = record["kind"]
        cell = self._cell(key)
        if kind == "progress":
            cell.sim_now = float(record.get("sim_now") or 0.0)
            cell.events_executed = int(record.get("events_executed") or 0)
            cell.events_per_sec = float(record.get("events_per_sec") or 0.0)
        elif kind == "task_end":
            cell.result = record.get("result") or {}
            cell.sim_now = float(record.get("sim_now") or cell.sim_now)
            cell.events_executed = int(record.get("events_executed")
                                       or cell.events_executed)
            self._fold_metrics(record.get("metrics") or {})
        if key not in self._settled:
            self._append(record)

    def _fold_metrics(self, metrics: Dict[str, Any]) -> None:
        """Cross-cell aggregation: every scalar metric value goes into
        a per-name Series (cells are the samples; the index is the
        fold order, which only the percentiles care about — and those
        are order-free)."""
        for name, doc in metrics.items():
            if not isinstance(doc, dict):
                continue
            value = doc.get("value", doc.get("mean"))
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                continue
            series = self._metric_values.get(name)
            if series is None:
                series = self._metric_values[name] = Series(name)
            series.record(float(len(series)), float(value))
            if name.startswith(FAULT_PREFIX):
                self.fault_counts[name] = \
                    self.fault_counts.get(name, 0.0) + float(value)

    # ------------------------------------------------------------------
    # aggregates (dashboard / report surface)
    # ------------------------------------------------------------------
    def _sample_throughput(self) -> None:
        rate = sum(cell.events_per_sec for cell in self.cells.values()
                   if cell.status == "running")
        self.throughput_history.append((self._clock(), rate))
        if len(self.throughput_history) > 512:
            del self.throughput_history[:256]

    def status_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in CELL_STATES}
        for cell in self.cells.values():
            counts[cell.status] = counts.get(cell.status, 0) + 1
        counts["pending"] += max(0, self.total - len(self.cells))
        return counts

    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells.values() if cell.cached)

    def completed_runtimes(self) -> List[Tuple[str, float]]:
        out = [(cell.key, cell.runtime) for cell in self.cells.values()
               if cell.done and not cell.cached
               and cell.runtime is not None]
        return sorted(out, key=lambda pair: -pair[1])

    def eta_seconds(self) -> Optional[float]:
        """Remaining wall estimate from completed-cell runtimes."""
        runtimes = [runtime for _, runtime in self.completed_runtimes()]
        if not runtimes:
            return None
        done = sum(1 for cell in self.cells.values() if cell.done)
        remaining = max(0, self.total - done)
        mean = sum(runtimes) / len(runtimes)
        return remaining * mean / max(1, self.workers)

    def fleet_events_per_sec(self) -> float:
        return self.throughput_history[-1][1] \
            if self.throughput_history else 0.0

    def aggregate_metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-metric min/mean/max/percentile summary across cells
        (:meth:`Series.summary` — the satellite helpers at work)."""
        return {name: series.summary(percentiles=(50, 99))
                for name, series in sorted(self._metric_values.items())}

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def _render(self) -> None:
        if self.dashboard is not None:
            self.dashboard.maybe_render(self)
