"""The live campaign dashboard: pure-ANSI, stdlib-only, TTY-aware.

Rendering strategy is chosen once at construction:

* **TTY mode** (stderr is a terminal): a full-screen-ish panel redrawn
  in place with ANSI cursor-home + erase-line sequences — task grid
  (one glyph per cell), fleet throughput sparkline, top-N slowest
  cells, fault and audit counters, ETA.  stdin (when it is also a
  TTY) is put into cbreak so single keypresses work:

  ======  =========================================
  key     action
  ======  =========================================
  ``q``   leave the dashboard (drop to line mode)
  ``s``   toggle the slowest-cells panel
  ``f``   toggle the fault/metric counters panel
  ======  =========================================

* **line mode** (not a TTY — CI, ``2>log``, ``--dashboard`` forced in
  a pipeline): one plain summary line every few seconds, e.g.::

    campaign: 12/16 done (2 running, 1 failed) | 57.3k ev/s | eta 41s

Both modes are throttled (a render at most every ``min_interval`` host
seconds) so dashboard cost never shows up in campaign wall time, and
both write to stderr only — stdout stays the machine-parseable surface
(tables, ``cache summary:``, ``task summary:``).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

#: Cell-state glyphs for the task grid, in legend order.
GLYPHS = [("ok", "✓", "32"),          # green check
          ("retried", "r", "33"),          # yellow
          ("running", "▶", "36"),     # cyan
          ("pending", "·", "90"),     # dim dot
          ("timed_out", "T", "31"),        # red
          ("failed", "F", "31"),           # red
          ("quarantined", "Q", "35")]      # magenta

SPARK_TICKS = "▁▂▃▄▅▆▇█"

CSI = "\x1b["


def sparkline(samples: List[float], width: int = 32) -> str:
    """The last ``width`` samples as unicode block ticks."""
    tail = samples[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return SPARK_TICKS[0] * len(tail)
    return "".join(
        SPARK_TICKS[min(len(SPARK_TICKS) - 1,
                        int(value / top * (len(SPARK_TICKS) - 1)))]
        for value in tail)


def format_rate(rate: float) -> str:
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M ev/s"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k ev/s"
    return f"{rate:.0f} ev/s"


def format_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "eta ?"
    if eta >= 90:
        return f"eta {eta / 60:.1f}m"
    return f"eta {eta:.0f}s"


class Dashboard:
    """Renders a :class:`~repro.obs.campaign.hub.TelemetryHub`."""

    def __init__(self, stream=None, *, force_tty: Optional[bool] = None,
                 min_interval: float = 0.25, line_interval: float = 2.0,
                 top_n: int = 5, clock=time.monotonic):
        self.stream = stream if stream is not None else sys.stderr
        self.is_tty = (force_tty if force_tty is not None
                       else bool(getattr(self.stream, "isatty",
                                         lambda: False)()))
        self.min_interval = min_interval if self.is_tty else line_interval
        self.top_n = top_n
        self._clock = clock
        self._last_render = 0.0
        self._lines_drawn = 0
        self.show_slowest = True
        self.show_faults = True
        self.renders = 0
        self._stdin_raw = None
        if self.is_tty:
            self._enter_cbreak()

    # ------------------------------------------------------------------
    # keyboard (TTY only, best-effort)
    # ------------------------------------------------------------------
    def _enter_cbreak(self) -> None:
        try:
            import termios
            import tty
            if not sys.stdin.isatty():
                return
            self._stdin_raw = termios.tcgetattr(sys.stdin.fileno())
            tty.setcbreak(sys.stdin.fileno())
        except Exception:  # pragma: no cover - no termios / closed stdin
            self._stdin_raw = None

    def _exit_cbreak(self) -> None:
        if self._stdin_raw is None:
            return
        try:  # pragma: no cover - TTY-only path
            import termios
            termios.tcsetattr(sys.stdin.fileno(), termios.TCSADRAIN,
                              self._stdin_raw)
        except Exception:
            pass
        self._stdin_raw = None

    def _poll_keys(self) -> None:
        if self._stdin_raw is None:
            return
        try:  # pragma: no cover - TTY-only path
            import select
            while select.select([sys.stdin], [], [], 0)[0]:
                key = sys.stdin.read(1)
                if key == "q":
                    self._teardown_screen()
                    self.is_tty = False
                    self.min_interval = max(self.min_interval, 2.0)
                elif key == "s":
                    self.show_slowest = not self.show_slowest
                elif key == "f":
                    self.show_faults = not self.show_faults
                else:
                    break
        except Exception:
            pass

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def maybe_render(self, hub) -> None:
        now = self._clock()
        if now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self._poll_keys()
        self.renders += 1
        if self.is_tty:
            self._render_panel(hub)
        else:
            self._render_line(hub)

    def finalize(self, hub) -> None:
        """Last render + terminal restoration."""
        self._last_render = 0.0
        self.renders += 1
        if self.is_tty:
            self._render_panel(hub)
            self.stream.write("\n")
            self._teardown_screen(clear=False)
        else:
            self._render_line(hub)
        self._exit_cbreak()
        try:
            self.stream.flush()
        except (OSError, ValueError):
            pass

    def summary_line(self, hub) -> str:
        counts = hub.status_counts()
        done = sum(counts[state] for state in
                   ("ok", "retried", "timed_out", "failed"))
        bad = counts["timed_out"] + counts["failed"]
        parts = [f"campaign: {done}/{hub.total} done "
                 f"({counts['running']} running, {bad} failed)"]
        if hub.cache_hits():
            parts.append(f"{hub.cache_hits()} cached")
        rate = hub.fleet_events_per_sec()
        if rate:
            parts.append(format_rate(rate))
        parts.append(format_eta(hub.eta_seconds()))
        return " | ".join(parts)

    def _render_line(self, hub) -> None:
        try:
            self.stream.write(self.summary_line(hub) + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass

    def _grid(self, hub) -> List[str]:
        glyph_for: Dict[str, str] = {
            state: f"{CSI}{color}m{glyph}{CSI}0m"
            for state, glyph, color in GLYPHS}
        cells = [glyph_for.get(cell.status, "?")
                 for _, cell in sorted(hub.cells.items())]
        cells += [glyph_for["pending"]] * max(0, hub.total - len(cells))
        width = 64
        return ["  " + "".join(cells[i:i + width])
                for i in range(0, len(cells), width)] or ["  (no cells)"]

    def _render_panel(self, hub) -> None:
        counts = hub.status_counts()
        lines = [f"{CSI}1mcampaign dashboard{CSI}0m  "
                 + self.summary_line(hub)]
        lines += self._grid(hub)
        legend = "  ".join(f"{CSI}{color}m{glyph}{CSI}0m {state}"
                           for state, glyph, color in GLYPHS
                           if counts.get(state))
        lines.append("  " + legend)
        history = [rate for _, rate in hub.throughput_history]
        if history:
            lines.append(f"  throughput {sparkline(history)} "
                         f"{format_rate(history[-1])}")
        if self.show_slowest:
            slowest = hub.completed_runtimes()[:self.top_n]
            if slowest:
                lines.append("  slowest cells:")
                lines += [f"    {key[:12]}  {runtime:6.2f}s"
                          for key, runtime in slowest]
        if self.show_faults and hub.fault_counts:
            fired = ", ".join(f"{name.split('.', 1)[1]}={value:g}"
                              for name, value
                              in sorted(hub.fault_counts.items()))
            lines.append(f"  faults: {fired}")
        # Previous frame taller than this one: wipe the leftovers, and
        # remember the full height written so the next cursor-up lands
        # back on the first line.
        wipe = max(0, self._lines_drawn - len(lines))
        try:
            out = []
            if self._lines_drawn:
                out.append(f"{CSI}{self._lines_drawn}F")  # cursor up-home
            for line in lines:
                out.append(f"{CSI}2K" + line + "\n")      # erase + draw
            out.extend(f"{CSI}2K\n" for _ in range(wipe))
            self.stream.write("".join(out))
            self.stream.flush()
        except (OSError, ValueError):
            return
        self._lines_drawn = len(lines) + wipe

    def _teardown_screen(self, clear: bool = True) -> None:
        if self._lines_drawn and clear:
            try:
                self.stream.write(f"{CSI}{self._lines_drawn}F"
                                  + (f"{CSI}2K\n" * self._lines_drawn)
                                  + f"{CSI}{self._lines_drawn}F")
                self.stream.flush()
            except (OSError, ValueError):
                pass
        self._lines_drawn = 0
