"""Worker-side telemetry streaming: spool records and their schema.

A sweep worker owns a live simulator the parent process can never see.
The :class:`SnapshotEmitter` is the bridge: it appends small JSON
records to a per-task *spool file* that the parent's
:class:`~repro.obs.campaign.hub.TelemetryHub` tails.  Three record
kinds cross the boundary:

``task_start``
    Written synchronously before the simulation is built: task key,
    worker pid, and the scenario's dict form.
``progress``
    Periodic heartbeats sampled by a daemon thread.  The thread reads
    exactly two scalar simulator attributes (``sim.now`` and
    ``sim.events_executed``) — plain attribute loads that are safe to
    race with the simulation and, crucially, never *touch* it: no
    event is scheduled, no sequence number consumed, so results stay
    byte-identical with streaming on.
``task_end``
    Written synchronously after the run: the result summary, the full
    MetricsRegistry snapshot, the cycle ledger's per-domain breakdown
    and the exit counts.

Spool files are append-only JSONL named ``<key>.<pid>.jsonl`` — the
pid suffix keeps a hung worker's stale file from interleaving with its
retry's — and a torn final line (worker killed mid-write) is simply an
incomplete line the hub's tail ignores.  Every emitter write is
wrapped: telemetry failure (disk full, unlinked spool dir) must never
fail the task.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

#: Schema tag stamped into worker records and validated by the hub.
SNAPSHOT_SCHEMA = "repro-campaign-snapshot/1"

#: Schema tag of the merged journal the hub writes.
JOURNAL_SCHEMA = "repro-campaign-journal/1"

#: Record kinds a worker emits.
WORKER_KINDS = ("task_start", "progress", "task_end")

#: Record kinds the hub itself originates (supervisor/cache state).
HUB_KINDS = ("campaign_start", "cache_hit", "cache_quarantined",
             "task_running", "task_terminal", "campaign_end")

#: Default host-seconds between progress heartbeats.
DEFAULT_HEARTBEAT = 0.25


class SnapshotError(ValueError):
    """A malformed snapshot/journal record."""


def validate_record(record: Any, *, journal: bool = False) -> Dict[str, Any]:
    """Validate one spool (or journal) record; returns it typed.

    Worker records must carry the snapshot schema, a known kind and a
    task key.  With ``journal=True`` the hub-originated kinds are also
    admitted and the host-wall timestamp + journal sequence number are
    required — that is the contract ``repro report`` loads against.
    """
    if not isinstance(record, dict):
        raise SnapshotError(f"record is {type(record).__name__}, not dict")
    kind = record.get("kind")
    allowed = WORKER_KINDS + HUB_KINDS if journal else WORKER_KINDS
    if kind not in allowed:
        raise SnapshotError(f"unknown record kind {kind!r}")
    if kind in WORKER_KINDS and record.get("schema") != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"record schema {record.get('schema')!r} is not "
            f"{SNAPSHOT_SCHEMA!r}")
    if kind not in ("campaign_start", "campaign_end") \
            and not isinstance(record.get("key"), str):
        raise SnapshotError(f"{kind} record carries no task key")
    if journal:
        if not isinstance(record.get("wall"), (int, float)):
            raise SnapshotError(f"journal {kind} record has no wall stamp")
        if not isinstance(record.get("seq"), int):
            raise SnapshotError(f"journal {kind} record has no seq")
    return record


def result_summary(result_dict: Mapping[str, Any]) -> Dict[str, Any]:
    """The compact slice of a result dict the journal carries.

    The full result lives in the cache; the journal only needs the
    columns the dashboard and report tabulate.
    """
    cpu = result_dict.get("cpu") or {}
    return {
        "throughput_bps": result_dict.get("throughput_bps", 0.0),
        "cpu_percent": float(sum(cpu.values())),
        "loss_rate": result_dict.get("loss_rate", 0.0),
        "interrupt_hz": result_dict.get("interrupt_hz", 0.0),
        "vm_count": result_dict.get("vm_count", 0),
        "duration": result_dict.get("duration", 0.0),
    }


class SnapshotEmitter:
    """Streams one task's telemetry into its spool file.

    Lifecycle inside :func:`repro.sweep.jobs.execute_payload`::

        emitter = SnapshotEmitter(spool_dir, key)
        emitter.task_start(scenario_dict)
        result = run(scenario, telemetry=True,
                     observer=emitter.observe_testbed)
        emitter.task_end(result)          # also stops the heartbeat

    Every public method is a no-op after an unrecoverable write error:
    streaming is strictly best-effort.
    """

    def __init__(self, spool_dir: str, key: str,
                 heartbeat: float = DEFAULT_HEARTBEAT,
                 clock=time.monotonic):
        self.key = key
        self.heartbeat = heartbeat
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._sim = None
        self._handle = None
        self._broken = False
        try:
            root = Path(spool_dir)
            root.mkdir(parents=True, exist_ok=True)
            path = root / f"{key}.{os.getpid()}.jsonl"
            self._handle = open(path, "a", encoding="utf-8")
        except OSError:
            self._broken = True

    # ------------------------------------------------------------------
    # record writers
    # ------------------------------------------------------------------
    def _write(self, kind: str, **fields: Any) -> None:
        if self._broken or self._handle is None:
            return
        record = {"schema": SNAPSHOT_SCHEMA, "kind": kind, "key": self.key,
                  "pid": os.getpid(),
                  "host_elapsed": self._clock() - self._started}
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        try:
            with self._lock:
                self._handle.write(line + "\n")
                self._handle.flush()
        except (OSError, ValueError):
            # ValueError: write on a handle closed by a racing task_end.
            self._broken = True

    def task_start(self, scenario: Mapping[str, Any]) -> None:
        self._write("task_start", scenario=dict(scenario))

    def observe_testbed(self, bed) -> None:
        """Testbed-construction hook: grab the simulator and start the
        heartbeat thread (idempotent; migration runs build two beds —
        the latest simulator wins)."""
        self._sim = bed.sim
        if self._thread is None and not self._broken:
            self._thread = threading.Thread(target=self._pulse,
                                            name=f"spool-{self.key[:8]}",
                                            daemon=True)
            self._thread.start()

    def _pulse(self) -> None:
        last_events = 0
        last_at = self._clock()
        while not self._stop.wait(self.heartbeat):
            sim = self._sim
            if sim is None:
                continue
            now_host = self._clock()
            events = sim.events_executed
            interval = max(1e-9, now_host - last_at)
            self._write("progress", sim_now=sim.now,
                        events_executed=events,
                        events_per_sec=(events - last_events) / interval)
            last_events, last_at = events, now_host

    def task_end(self, result) -> None:
        """The final full snapshot; stops the heartbeat first so no
        progress record can land after the terminal record."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        telemetry = getattr(result, "telemetry", None)
        metrics: Dict[str, Any] = {}
        cycles_by_domain: Dict[str, float] = {}
        if telemetry is not None:
            try:
                metrics = telemetry.registry.snapshot(telemetry.sim.now)
            except RuntimeError:  # pragma: no cover - defensive
                metrics = {}
            ledger = getattr(telemetry.platform, "ledger", None)
            if ledger is not None:
                cycles_by_domain = ledger.by_domain()
        sim = self._sim
        self._write(
            "task_end",
            result=result_summary(result.to_dict()),
            metrics=metrics,
            cycles_by_domain=cycles_by_domain,
            exit_counts=dict(getattr(result, "exit_counts", {}) or {}),
            sim_now=sim.now if sim is not None else None,
            events_executed=(sim.events_executed
                             if sim is not None else None),
        )
        self.close()

    def close(self) -> None:
        self._stop.set()
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort
                pass
