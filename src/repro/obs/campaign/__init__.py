"""Campaign-scale observability: streaming telemetry, dashboard, report.

PR 1 gave a *single run* deep observability; the sweep/supervise stack
made campaigns of hundreds of cells the unit of work.  This package is
the layer that watches a whole campaign at once:

* :mod:`repro.obs.campaign.snapshot` — the worker side.  Each sweep
  worker appends compact, schema-versioned JSONL records to a spool
  file: a ``task_start`` record, periodic ``progress`` heartbeats
  (simulated-time progress and events/s, sampled by a daemon thread
  that never touches the simulation), and a ``task_end`` record
  carrying the run's MetricsRegistry snapshot, cycle-ledger breakdown
  and result summary.
* :mod:`repro.obs.campaign.hub` — the parent side.  The
  :class:`TelemetryHub` ingests spool records as they appear, stamps
  them with host wall-clock, appends every record to a crash-safe
  ``campaign.jsonl`` journal, and maintains fleet-level aggregates
  (per-cell state, throughput history, ETA, slowest cells, fault and
  audit counters).
* :mod:`repro.obs.campaign.dashboard` — an in-terminal (pure ANSI,
  zero dependencies) live view fed from the hub; degrades to periodic
  single-line summaries when stderr is not a TTY.
* :mod:`repro.obs.campaign.report` — ``repro report``: renders a
  journal (optionally diffed against a prior one) into a
  self-contained static HTML file with inline CSS/JS only.

Hard contract, inherited from the telemetry/ledger split: the hub is
**observation-only**.  Cached results, cache keys, checkpoints and
figure artifacts are byte-identical with the hub enabled; host
wall-clock exists only in the journal, never in results.
"""

from repro.obs.campaign.hub import TelemetryHub
from repro.obs.campaign.snapshot import (
    JOURNAL_SCHEMA,
    SNAPSHOT_SCHEMA,
    SnapshotEmitter,
    validate_record,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "SnapshotEmitter",
    "TelemetryHub",
]
