"""Job construction and the process-pool worker entrypoint.

Everything that crosses the pool boundary is a plain dict of JSON
scalars — the scenario's dict form in, the result's dict form out — so
jobs pickle under any start method and the parent never receives live
simulator objects from a worker.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.api import Scenario, run
from repro.core.costs import CostModel
from repro.sweep.cache import costs_to_dict, job_key

#: Chaos hook (CI's chaos-harness job): when this names a directory,
#: each task key crashes its worker hard (``os._exit``) exactly once —
#: a marker file remembers which keys already died — exercising the
#: supervisor's respawn/retry path end to end.
CHAOS_ENV = "REPRO_SWEEP_CHAOS_DIR"


@dataclass(frozen=True)
class Job:
    """One expanded sweep point, content-addressed."""

    index: int
    scenario: Scenario
    key: str

    def payload(self, costs_dict: Mapping[str, object],
                metrics_path: Optional[str] = None,
                audit: bool = True,
                spool_dir: Optional[str] = None) -> Dict[str, object]:
        """The picklable dict :func:`execute_payload` consumes.

        ``key`` rides along for supervision bookkeeping (chaos
        markers, worker-side diagnostics); it is derived from the
        scenario+costs content, so including it adds no information
        the payload didn't already carry.  ``spool_dir`` arms the
        campaign telemetry streamer — observation-only, so it never
        enters the cache key either.
        """
        payload: Dict[str, object] = {
            "scenario": self.scenario.to_dict(),
            "costs": dict(costs_dict),
            "key": self.key,
        }
        if metrics_path is not None:
            payload["metrics_path"] = metrics_path
        if not audit:
            payload["audit"] = False
        if spool_dir is not None:
            payload["spool_dir"] = spool_dir
        return payload


def build_jobs(scenarios: Sequence[Scenario],
               costs: Optional[CostModel] = None) -> List[Job]:
    """Index and content-address a batch of scenarios."""
    costs_dict = costs_to_dict(costs)
    return [Job(index, scenario, job_key(scenario.to_dict(), costs_dict))
            for index, scenario in enumerate(scenarios)]


def execute_payload(payload: Mapping[str, object]) -> Dict[str, object]:
    """Run one job; the pool's map function (must stay module-level so
    it pickles by reference).

    Seeding is deterministic: the scenario carries its seed, so a job
    produces the same result dict no matter which worker runs it, in
    what order, or whether it runs in-process (``--jobs 1``).
    """
    _maybe_chaos_crash(payload.get("key"))
    scenario = Scenario.from_dict(payload["scenario"])
    costs = CostModel(**payload["costs"])
    metrics_path = payload.get("metrics_path")
    spool_dir = payload.get("spool_dir")
    emitter = None
    observer = None
    telemetry = metrics_path is not None
    if spool_dir:
        from repro.obs.campaign.snapshot import SnapshotEmitter
        emitter = SnapshotEmitter(str(spool_dir), payload["key"])
        emitter.task_start(payload["scenario"])
        observer = emitter.observe_testbed
        # The task_end snapshot carries the metrics registry, so the
        # streamer turns telemetry on; results stay byte-identical
        # because telemetry is observation-only by contract.
        telemetry = True
    try:
        result = run(scenario, costs=costs, telemetry=telemetry,
                     audit=payload.get("audit", True), observer=observer)
    except BaseException:
        if emitter is not None:
            emitter.close()
        raise
    if metrics_path is not None:
        result.telemetry.write_metrics(metrics_path, result.duration)
    if emitter is not None:
        emitter.task_end(result)
    return result.to_dict()


def _maybe_chaos_crash(key: Optional[str]) -> None:
    """Die hard once per task key when the chaos hook is armed.

    The marker is created *before* exiting, so the retry of the same
    key runs clean — every task crashes exactly once, deterministically,
    which is what the CI chaos-harness asserts against.
    """
    chaos_dir = os.environ.get(CHAOS_ENV)
    if not chaos_dir or not key:
        return
    marker = Path(chaos_dir) / f"{key}.crashed"
    if marker.exists():
        return
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.touch()
    os._exit(17)
