"""Job construction and the process-pool worker entrypoint.

Everything that crosses the pool boundary is a plain dict of JSON
scalars — the scenario's dict form in, the result's dict form out — so
jobs pickle under any start method and the parent never receives live
simulator objects from a worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.api import Scenario, run
from repro.core.costs import CostModel
from repro.sweep.cache import costs_to_dict, job_key


@dataclass(frozen=True)
class Job:
    """One expanded sweep point, content-addressed."""

    index: int
    scenario: Scenario
    key: str

    def payload(self, costs_dict: Mapping[str, object],
                metrics_path: Optional[str] = None) -> Dict[str, object]:
        """The picklable dict :func:`execute_payload` consumes."""
        payload: Dict[str, object] = {
            "scenario": self.scenario.to_dict(),
            "costs": dict(costs_dict),
        }
        if metrics_path is not None:
            payload["metrics_path"] = metrics_path
        return payload


def build_jobs(scenarios: Sequence[Scenario],
               costs: Optional[CostModel] = None) -> List[Job]:
    """Index and content-address a batch of scenarios."""
    costs_dict = costs_to_dict(costs)
    return [Job(index, scenario, job_key(scenario.to_dict(), costs_dict))
            for index, scenario in enumerate(scenarios)]


def execute_payload(payload: Mapping[str, object]) -> Dict[str, object]:
    """Run one job; the pool's map function (must stay module-level so
    it pickles by reference).

    Seeding is deterministic: the scenario carries its seed, so a job
    produces the same result dict no matter which worker runs it, in
    what order, or whether it runs in-process (``--jobs 1``).
    """
    scenario = Scenario.from_dict(payload["scenario"])
    costs = CostModel(**payload["costs"])
    metrics_path = payload.get("metrics_path")
    result = run(scenario, costs=costs, telemetry=metrics_path is not None)
    if metrics_path is not None:
        result.telemetry.write_metrics(metrics_path, result.duration)
    return result.to_dict()
