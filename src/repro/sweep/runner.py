"""The campaign engine: cache-aware, pool-parallel scenario execution.

One call — :func:`run_sweep` — takes a list of scenarios and returns
their results in input order, having (1) served every previously-seen
configuration straight from the content-addressed cache, (2) executed
each *distinct* remaining configuration exactly once (duplicates within
a campaign collapse onto one simulation), and (3) fanned the distinct
misses out over a ``ProcessPoolExecutor`` when ``jobs > 1``.

Determinism contract: the returned results — and therefore any JSON
artifact derived from them — are byte-identical across ``jobs=1`` and
``jobs=N`` and across cold and warm caches.  The simulator itself is
deterministic per seed; the engine's duty is not to launder that
through scheduling, so results are keyed by job index (never by
completion order) and every result, fresh or cached, passes through the
same ``to_dict``/``from_dict`` normalization.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.api import Scenario
from repro.core.costs import CostModel
from repro.core.experiment import RunResult
from repro.sweep.cache import ResultCache, costs_to_dict
from repro.sweep.jobs import Job, build_jobs, execute_payload


@dataclass
class SweepStats:
    """What the engine did, for the one-line summary CI parses."""

    total: int = 0
    hits: int = 0
    misses: int = 0
    #: distinct simulations actually executed (duplicate scenarios in
    #: one campaign collapse onto one run).
    executed: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def summary(self) -> str:
        """The stable, machine-parseable summary line."""
        return (f"cache summary: hits={self.hits} misses={self.misses} "
                f"executed={self.executed} total={self.total} "
                f"hit_rate={self.hit_rate * 100:.1f}%")


@dataclass
class Outcome:
    """One scenario's result, with its provenance."""

    index: int
    scenario: Scenario
    key: str
    result: RunResult
    cached: bool


def run_sweep(
    scenarios: Sequence[Scenario],
    *,
    costs: Optional[CostModel] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    metrics_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> tuple[List[Outcome], SweepStats]:
    """Execute a campaign; outcomes come back in input order.

    ``metrics_dir`` turns on telemetry inside each *executed* job and
    writes one ``<key>.metrics.json`` per job there (cache hits skip
    simulation, hence produce no new metrics file).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    say = progress or (lambda message: None)
    costs_dict = costs_to_dict(costs)
    job_list = build_jobs(scenarios, costs)
    stats = SweepStats(total=len(job_list))
    results: Dict[int, RunResult] = {}
    cached: Dict[int, bool] = {}

    misses: List[Job] = []
    for job in job_list:
        entry = cache.get(job.key) if cache is not None else None
        if entry is not None:
            try:
                results[job.index] = RunResult.from_dict(entry)
                cached[job.index] = True
                stats.hits += 1
                continue
            except (KeyError, ValueError):
                pass  # corrupt entry: fall through to re-simulate
        misses.append(job)
    stats.misses = len(misses)

    # Collapse duplicate configurations: one simulation per distinct
    # key, its result shared by every job that asked for it.
    distinct: Dict[str, Job] = {}
    for job in misses:
        distinct.setdefault(job.key, job)
    ordered = list(distinct.values())
    stats.executed = len(ordered)
    if ordered:
        say(f"executing {len(ordered)} distinct jobs "
            f"({stats.hits} cached, jobs={jobs})")

    def metrics_path(job: Job) -> Optional[str]:
        if metrics_dir is None:
            return None
        from pathlib import Path
        root = Path(metrics_dir)
        root.mkdir(parents=True, exist_ok=True)
        return str(root / f"{job.key}.metrics.json")

    payloads = [job.payload(costs_dict, metrics_path(job))
                for job in ordered]
    fresh: Dict[str, dict] = {}
    if jobs > 1 and len(ordered) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs,
                                                 len(ordered))) as pool:
            # chunksize=1 is deliberate: jobs are whole simulations
            # (seconds each), so per-job dispatch keeps the pool
            # load-balanced; results are keyed by job index, so the
            # chunking policy can never affect output bytes.
            for job, result_dict in zip(ordered,
                                        pool.map(execute_payload, payloads,
                                                 chunksize=1)):
                fresh[job.key] = result_dict
                say(f"  done {job.scenario.mode}#{job.index} "
                    f"[{job.key[:12]}]")
    else:
        for job, payload in zip(ordered, payloads):
            fresh[job.key] = execute_payload(payload)
            say(f"  done {job.scenario.mode}#{job.index} [{job.key[:12]}]")

    if cache is not None:
        for key, result_dict in fresh.items():
            cache.put(key, distinct[key].scenario.to_dict(), costs_dict,
                      result_dict)
    for job in misses:
        results[job.index] = RunResult.from_dict(fresh[job.key])
        cached[job.index] = False

    outcomes = [Outcome(index=job.index, scenario=job.scenario, key=job.key,
                        result=results[job.index], cached=cached[job.index])
                for job in job_list]
    return outcomes, stats
