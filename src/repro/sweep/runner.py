"""The campaign engine: cache-aware, pool-parallel, supervised.

One call — :func:`run_sweep` — takes a list of scenarios and returns
their results in input order, having (1) served every previously-seen
configuration straight from the content-addressed cache, (2) executed
each *distinct* remaining configuration exactly once (duplicates within
a campaign collapse onto one simulation), and (3) fanned the distinct
misses out over a supervised ``ProcessPoolExecutor`` when ``jobs > 1``
— worker crashes are retried with backoff, hangs hit a watchdog
timeout, and a broken pool is respawned (see
:mod:`repro.sweep.supervise`).

Crash safety: each result is written to the cache (and the optional
campaign checkpoint updated) *as it completes*, not at the end — a
campaign killed at any instant keeps every finished cell, and
``repro sweep --resume`` recomputes none of them.

Determinism contract: the returned results — and therefore any JSON
artifact derived from them — are byte-identical across ``jobs=1`` and
``jobs=N`` and across cold and warm caches.  The simulator itself is
deterministic per seed; the engine's duty is not to launder that
through scheduling, so results are keyed by job index (never by
completion order) and every result, fresh or cached, passes through the
same ``to_dict``/``from_dict`` normalization.  Tasks that ultimately
fail return ``Outcome.result = None`` (plus a ``TaskOutcome`` saying
why) instead of poisoning the ordering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.api import Scenario
from repro.core.costs import CostModel
from repro.core.experiment import RunResult
from repro.sweep.cache import ResultCache, costs_to_dict
from repro.sweep.checkpoint import CampaignCheckpoint
from repro.sweep.jobs import Job, build_jobs, execute_payload
from repro.sweep.supervise import (SuperviseConfig, TaskOutcome,
                                   run_supervised)


@dataclass
class SweepStats:
    """What the engine did, for the one-line summary CI parses."""

    total: int = 0
    hits: int = 0
    misses: int = 0
    #: distinct simulations actually executed (duplicate scenarios in
    #: one campaign collapse onto one run).
    executed: int = 0
    #: Task-outcome counts across the executed jobs (supervision).
    ok: int = 0
    retried: int = 0
    timed_out: int = 0
    failed: int = 0
    #: Worker-pool respawns caused by crashes/timeouts.
    respawns: int = 0
    #: Cache entries quarantined as corrupt during this campaign.
    corrupt: int = 0
    #: Total campaign wall-clock in host seconds (cache scan included).
    wall_s: float = 0.0
    #: Most tasks observed in flight at once.
    peak_workers: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def failures(self) -> int:
        """Tasks that ended without a result."""
        return self.timed_out + self.failed

    def summary(self) -> str:
        """The stable, machine-parseable summary line."""
        return (f"cache summary: hits={self.hits} misses={self.misses} "
                f"executed={self.executed} total={self.total} "
                f"hit_rate={self.hit_rate * 100:.1f}%")

    def task_summary(self) -> str:
        """The supervision counterpart of :meth:`summary`.

        New fields append after ``corrupt=`` — CI greps match prefixes
        of this line, so the field order is load-bearing.
        """
        return (f"task summary: ok={self.ok} retried={self.retried} "
                f"timed_out={self.timed_out} failed={self.failed} "
                f"respawns={self.respawns} corrupt={self.corrupt} "
                f"wall_s={self.wall_s:.2f} "
                f"peak_workers={self.peak_workers}")


@dataclass
class Outcome:
    """One scenario's result, with its provenance.

    ``result`` is None when the task ultimately failed under
    supervision; ``task`` then carries the terminal
    :class:`~repro.sweep.supervise.TaskOutcome` (it is None for cache
    hits, which execute nothing).
    """

    index: int
    scenario: Scenario
    key: str
    result: Optional[RunResult]
    cached: bool
    task: Optional[TaskOutcome] = None


def run_sweep(
    scenarios: Sequence[Scenario],
    *,
    costs: Optional[CostModel] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    metrics_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    supervise: Optional[SuperviseConfig] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
    audit: bool = True,
    hub=None,
) -> tuple[List[Outcome], SweepStats]:
    """Execute a campaign; outcomes come back in input order.

    ``metrics_dir`` turns on telemetry inside each *executed* job and
    writes one ``<key>.metrics.json`` per job there (cache hits skip
    simulation, hence produce no new metrics file).  ``supervise``
    overrides the default watchdog/retry policy; ``checkpoint`` is
    updated after every task so an interrupted campaign resumes with
    zero recomputation; ``audit=False`` disables the runtime invariant
    auditor inside the executed jobs.  ``hub`` attaches a
    :class:`~repro.obs.campaign.hub.TelemetryHub`: executed jobs
    stream worker telemetry into its spool, and cache/supervision
    events flow into its journal and dashboard.  The hub is
    observation-only — results, cache entries, checkpoints and every
    derived artifact are byte-identical with it on or off.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    started_wall = time.monotonic()
    say = progress or (lambda message: None)
    costs_dict = costs_to_dict(costs)
    job_list = build_jobs(scenarios, costs)
    stats = SweepStats(total=len(job_list))
    if checkpoint is not None:
        checkpoint.total = len({job.key for job in job_list})
    if hub is not None:
        hub.campaign_start(total=len({job.key for job in job_list}),
                           workers=jobs)
    results: Dict[int, RunResult] = {}
    cached: Dict[int, bool] = {}

    misses: List[Job] = []
    hit_keys = set()
    for job in job_list:
        corrupt_before = cache.corruption if cache is not None else 0
        entry = cache.get(job.key) if cache is not None else None
        if hub is not None and cache is not None \
                and cache.corruption > corrupt_before:
            hub.cache_quarantined(job.key)
        if entry is not None:
            try:
                results[job.index] = RunResult.from_dict(entry)
                cached[job.index] = True
                stats.hits += 1
                hit_keys.add(job.key)
                if hub is not None:
                    hub.cache_hit(job.key)
                continue
            except (KeyError, ValueError):
                pass  # unreadable entry: fall through to re-simulate
        misses.append(job)
    stats.misses = len(misses)
    if checkpoint is not None:
        for key in hit_keys:
            checkpoint.mark_completed(key)

    # Collapse duplicate configurations: one simulation per distinct
    # key, its result shared by every job that asked for it.
    distinct: Dict[str, Job] = {}
    for job in misses:
        distinct.setdefault(job.key, job)
    ordered = list(distinct.values())
    stats.executed = len(ordered)
    if ordered:
        say(f"executing {len(ordered)} distinct jobs "
            f"({stats.hits} cached, jobs={jobs})")

    def metrics_path(job: Job) -> Optional[str]:
        if metrics_dir is None:
            return None
        from pathlib import Path
        root = Path(metrics_dir)
        root.mkdir(parents=True, exist_ok=True)
        return str(root / f"{job.key}.metrics.json")

    spool_dir = (str(hub.spool_dir)
                 if hub is not None and hub.spool_dir is not None else None)
    tasks = [(job.key, job.payload(costs_dict, metrics_path(job),
                                   audit=audit, spool_dir=spool_dir))
             for job in ordered]

    def on_result(key: str, task: TaskOutcome,
                  result_dict: Optional[dict]) -> None:
        """Persist each result the moment it lands (crash safety)."""
        job = distinct[key]
        if result_dict is not None:
            if cache is not None:
                cache.put(key, job.scenario.to_dict(), costs_dict,
                          result_dict)
            if checkpoint is not None:
                checkpoint.mark_completed(key)
            say(f"  done {job.scenario.mode}#{job.index} [{key[:12]}]")
        else:
            if checkpoint is not None:
                checkpoint.mark_failed(key, task.to_dict())
            say(f"  FAILED {job.scenario.mode}#{job.index} [{key[:12]}]: "
                f"{task.error}")

    fresh, task_outcomes, task_stats = run_supervised(
        execute_payload, tasks, jobs=jobs, config=supervise,
        on_result=on_result, say=say, hub=hub)

    stats.ok = task_stats.ok
    stats.retried = task_stats.retried
    stats.timed_out = task_stats.timed_out
    stats.failed = task_stats.failed
    stats.respawns = task_stats.respawns
    stats.peak_workers = task_stats.peak_workers
    stats.wall_s = time.monotonic() - started_wall
    if cache is not None:
        stats.corrupt = cache.corruption

    for job in misses:
        if job.key in fresh:
            results[job.index] = RunResult.from_dict(fresh[job.key])
        cached[job.index] = False

    outcomes = [Outcome(index=job.index, scenario=job.scenario, key=job.key,
                        result=results.get(job.index),
                        cached=cached[job.index],
                        task=task_outcomes.get(job.key))
                for job in job_list]
    return outcomes, stats
