"""The campaign subsystem: declarative sweeps, a process pool, and a
content-addressed result cache.

* :mod:`repro.sweep.spec` — :class:`SweepSpec`: grid/list expansion of
  a declarative sweep document into :class:`~repro.api.Scenario` lists.
* :mod:`repro.sweep.cache` — :class:`ResultCache`: results keyed by a
  stable hash of (scenario, cost model, schema version); warm reruns
  simulate nothing.
* :mod:`repro.sweep.jobs` — content-addressed jobs and the picklable
  pool worker.
* :mod:`repro.sweep.runner` — :func:`run_sweep`: the cache-aware,
  pool-parallel engine with a byte-identical determinism contract.
* :mod:`repro.sweep.supervise` — :func:`run_supervised`: watchdog
  timeouts, bounded crash retries, and worker-pool respawn under the
  engine.
* :mod:`repro.sweep.checkpoint` — :class:`CampaignCheckpoint`: the
  atomic progress record behind ``repro sweep --resume``.
* :mod:`repro.sweep.figures` — every paper figure (Figs. 6-21) as a
  registered campaign; backs both ``repro figures`` and the
  pytest-benchmark suite.
"""

from repro.sweep.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    canonical_json,
    costs_to_dict,
    default_cache_dir,
    job_key,
)
from repro.sweep.figures import (
    FIGURES,
    figure_artifact,
    generate_figures,
    resolve_names,
    run_figure,
)
from repro.sweep.checkpoint import (CHECKPOINT_SCHEMA, CampaignCheckpoint,
                                    CheckpointError)
from repro.sweep.jobs import Job, build_jobs, execute_payload
from repro.sweep.runner import Outcome, SweepStats, run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.supervise import (SuperviseConfig, SuperviseStats,
                                   TaskOutcome, run_supervised)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CampaignCheckpoint",
    "CheckpointError",
    "DEFAULT_CACHE_DIR",
    "FIGURES",
    "Job",
    "Outcome",
    "ResultCache",
    "SuperviseConfig",
    "SuperviseStats",
    "SweepSpec",
    "SweepStats",
    "TaskOutcome",
    "build_jobs",
    "canonical_json",
    "costs_to_dict",
    "default_cache_dir",
    "execute_payload",
    "figure_artifact",
    "generate_figures",
    "job_key",
    "resolve_names",
    "run_figure",
    "run_sweep",
    "run_supervised",
]
