"""The figure registry: every paper figure as a named campaign.

Each entry maps a figure name ("fig06" … "fig22") to the labeled
scenarios that generate its data and a row builder that renders the
series the paper plots (fig22 extends the paper: cross-host scale-out
over the modeled ToR fabric).  The pytest-benchmark suite
(``benchmarks/bench_fig*.py``) and the ``repro figures`` CLI both run
through here, so there is exactly one definition of what each figure
measures.

``quick=True`` substitutes a smoke-scale variant of every campaign
(fewer VMs, shorter windows, earlier migrations): the runs stay valid
end-to-end exercises of the same code paths, but their numbers are NOT
the paper's — quick artifacts are for CI and cache plumbing, not for
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import Scenario
from repro.core.costs import CostModel
from repro.core.experiment import RunResult
from repro.migration.timeline import series_from_timeline
from repro.sweep.cache import ResultCache
from repro.sweep.runner import SweepStats, run_sweep

#: Schema tag in every figure artifact.
FIGURE_SCHEMA = "repro-figure/1"

LabeledScenarios = List[Tuple[str, Scenario]]
Rows = Tuple[List[str], List[List[object]]]

_AIC = {"kind": "aic"}
_DYNAMIC = {"kind": "dynamic_itr"}
_FIXED_2K = {"kind": "fixed_itr", "hz": 2000}

#: The §5.3 policy ladder of Figs. 8-10.
_POLICY_LADDER = [("20kHz", {"kind": "fixed_itr", "hz": 20000}),
                  ("2kHz", _FIXED_2K),
                  ("AIC", _AIC),
                  ("1kHz", {"kind": "fixed_itr", "hz": 1000})]


@dataclass(frozen=True)
class Figure:
    """One registered figure."""

    name: str
    title: str
    scenarios: Callable[[bool], LabeledScenarios]
    rows: Callable[[Dict[str, RunResult]], Rows]


# ----------------------------------------------------------------------
# scenario builders (quick -> labeled scenarios)
# ----------------------------------------------------------------------
def _fig06_scenarios(quick: bool) -> LabeledScenarios:
    counts = [1, 2] if quick else [1, 3, 5, 7]
    base = Scenario(mode="sriov", ports=1, kernel="2.6.18",
                    policy=_DYNAMIC,
                    warmup=0.3 if quick else 1.2,
                    duration=0.15 if quick else 0.4)
    labeled: LabeledScenarios = []
    for count in counts:
        labeled.append((f"{count}-VM",
                        base.with_(vm_count=count, opts={})))
        labeled.append((f"{count}-VM-opt",
                        base.with_(vm_count=count,
                                   opts={"msi_acceleration": True})))
    return labeled


def _fig07_scenarios(quick: bool) -> LabeledScenarios:
    base = Scenario(mode="sriov", vm_count=1, ports=1, policy=_DYNAMIC,
                    warmup=0.3 if quick else 1.2,
                    duration=0.15 if quick else 0.5)
    return [("baseline", base.with_(opts={})),
            ("eoi-accelerated",
             base.with_(opts={"eoi_acceleration": True}))]


def _aic_ladder(quick: bool, **overrides) -> LabeledScenarios:
    base = Scenario(warmup=0.5 if quick else 2.2,
                    duration=0.15 if quick else 0.5,
                    **overrides)
    return [(label, base.with_(policy=policy))
            for label, policy in _POLICY_LADDER]


def _fig08_scenarios(quick: bool) -> LabeledScenarios:
    return _aic_ladder(quick, mode="sriov", vm_count=1, ports=1)


def _fig09_scenarios(quick: bool) -> LabeledScenarios:
    return _aic_ladder(quick, mode="sriov", vm_count=1, ports=1,
                       protocol="tcp")


def _fig10_scenarios(quick: bool) -> LabeledScenarios:
    ladder = _aic_ladder(quick, mode="intervm", variant="sriov",
                         sender="dom0")
    # The paper's Fig. 10 column order: 20kHz, AIC, 2kHz, 1kHz.
    order = {"20kHz": 0, "AIC": 1, "2kHz": 2, "1kHz": 3}
    return sorted(ladder, key=lambda pair: order[pair[0]])


def _fig12_scenarios(quick: bool) -> LabeledScenarios:
    vms = 2 if quick else 10
    base = Scenario(mode="sriov", vm_count=vms,
                    warmup=0.3 if quick else 1.2,
                    duration=0.15 if quick else 0.4)
    # AIC and the native baseline need the longer warmup for the
    # coalescing feedback to settle.
    settled = base.with_(warmup=0.5 if quick else 2.2)
    return [
        ("2.6.18 baseline", base.with_(kernel="2.6.18", opts={},
                                       policy=_DYNAMIC)),
        ("2.6.18 +msi", base.with_(kernel="2.6.18",
                                   opts={"msi_acceleration": True},
                                   policy=_DYNAMIC)),
        ("2.6.28 baseline", base.with_(opts={}, policy=_DYNAMIC)),
        ("2.6.28 +eoi", base.with_(opts={"eoi_acceleration": True},
                                   policy=_DYNAMIC)),
        ("2.6.28 +eoi+aic",
         settled.with_(opts={"eoi_acceleration": True,
                             "adaptive_coalescing": True})),
        ("native", settled.with_(mode="native")),
    ]


def _intervm_sizes(quick: bool) -> List[int]:
    return [1500, 4000] if quick else [1500, 2000, 2500, 3000, 4000]


def _fig13_scenarios(quick: bool) -> LabeledScenarios:
    base = Scenario(mode="intervm", variant="sriov",
                    warmup=0.5 if quick else 2.2,
                    duration=0.15 if quick else 0.5)
    return [(str(size), base.with_(message_bytes=size))
            for size in _intervm_sizes(quick)]


def _fig14_scenarios(quick: bool) -> LabeledScenarios:
    pv = Scenario(mode="intervm", variant="pv", kind="pvm",
                  warmup=0.3 if quick else 0.8,
                  duration=0.15 if quick else 0.5)
    labeled = [(f"pv-{size}", pv.with_(message_bytes=size))
               for size in _intervm_sizes(quick)]
    labeled.append(("sriov-1500",
                    Scenario(mode="intervm", variant="sriov",
                             message_bytes=1500,
                             warmup=0.5 if quick else 2.2,
                             duration=0.15 if quick else 0.5)))
    return labeled


def _scaling_counts(quick: bool) -> List[int]:
    return [1, 2] if quick else [10, 20, 40, 60]


def _fig15_scenarios(quick: bool) -> LabeledScenarios:
    # The VF driver's default 2 kHz ITR: the paper's per-VM slopes
    # (2.8% HVM / 1.76% PVM) imply ~2 kHz steady interrupt rates per
    # guest, below which AIC's lif floor would deflate the comparison.
    base = Scenario(mode="sriov", kind="hvm", policy=_FIXED_2K,
                    warmup=0.3 if quick else 0.6,
                    duration=0.15 if quick else 0.4)
    return [(str(count), base.with_(vm_count=count))
            for count in _scaling_counts(quick)]


def _fig16_scenarios(quick: bool) -> LabeledScenarios:
    counts = _scaling_counts(quick)
    base = Scenario(mode="sriov", policy=_FIXED_2K,
                    warmup=0.3 if quick else 0.6,
                    duration=0.15 if quick else 0.4)
    labeled = [(f"pvm-{count}", base.with_(kind="pvm", vm_count=count))
               for count in counts]
    labeled.append((f"hvm-{counts[0]}",
                    base.with_(kind="hvm", vm_count=counts[0])))
    labeled.append((f"hvm-{counts[-1]}",
                    base.with_(kind="hvm", vm_count=counts[-1])))
    return labeled


def _fig17_scenarios(quick: bool) -> LabeledScenarios:
    base = Scenario(mode="pv", kind="hvm",
                    warmup=0.3 if quick else 0.6,
                    duration=0.15 if quick else 0.4)
    return [(str(count), base.with_(vm_count=count))
            for count in _scaling_counts(quick)]


def _fig18_scenarios(quick: bool) -> LabeledScenarios:
    counts = _scaling_counts(quick)
    base = Scenario(mode="pv",
                    warmup=0.3 if quick else 0.6,
                    duration=0.15 if quick else 0.4)
    labeled = [(f"pvm-{count}", base.with_(kind="pvm", vm_count=count))
               for count in counts]
    labeled.append((f"hvm-{counts[0]}",
                    base.with_(kind="hvm", vm_count=counts[0])))
    return labeled


def _fig19_scenarios(quick: bool) -> LabeledScenarios:
    base = Scenario(mode="vmdq", kind="pvm",
                    warmup=0.3 if quick else 0.6,
                    duration=0.15 if quick else 0.4)
    return [(str(count), base.with_(vm_count=count))
            for count in _scaling_counts(quick)]


def _fig20_scenarios(quick: bool) -> LabeledScenarios:
    return [("timeline", Scenario(mode="migrate", variant="pv",
                                  start_at=0.5 if quick else 4.5))]


def _fig21_scenarios(quick: bool) -> LabeledScenarios:
    return [("timeline", Scenario(mode="migrate", variant="dnis",
                                  start_at=0.5 if quick else 4.5))]


def _fig22_hosts(pairs: int) -> List[dict]:
    # One VF port per guest, as in the paper's aggregate-10GbE rigs, so
    # the 1 GbE port links never cap the cross-host scaling curve.
    return [{"name": name, "vm_count": pairs, "ports": pairs}
            for name in ("h0", "h1")]


def _fig22_flows(pairs: int) -> List[dict]:
    flows = []
    for vm in range(pairs):
        flows.append({"src_host": "h0", "dst_host": "h1",
                      "src_vm": vm, "dst_vm": vm, "offered_bps": 400e6})
        flows.append({"src_host": "h1", "dst_host": "h0",
                      "src_vm": vm, "dst_vm": vm, "offered_bps": 400e6})
    return flows


def _fig22_scenarios(quick: bool) -> LabeledScenarios:
    # Beyond the paper: two SR-IOV hosts under one 10 GbE ToR, scaling
    # bidirectional 400 Mbps tenant pairs until the fabric matters.
    counts = [1, 2] if quick else [1, 2, 4, 7]
    base = Scenario(mode="cluster", hosts=_fig22_hosts(1),
                    flows=_fig22_flows(1),
                    fabric={"uplink_gbps": 10.0, "latency_s": 2e-5},
                    warmup=0.1 if quick else 0.3,
                    duration=0.05 if quick else 0.2)
    return [(str(count), base.with_(hosts=_fig22_hosts(count),
                                    flows=_fig22_flows(count)))
            for count in counts]


def _fig21f_scenarios(quick: bool) -> LabeledScenarios:
    # The DNIS timeline again, but the VF's physical line flaps while
    # the guest is still on the VF: the bond must fail over to the PV
    # standby, ride out the outage, and fall back when carrier returns.
    flap = {"kind": "link_flap", "at": 0.15 if quick else 2.0,
            "duration": 0.2 if quick else 1.0, "port": 0}
    return [("timeline", Scenario(mode="migrate", variant="dnis",
                                  start_at=0.5 if quick else 4.5,
                                  faults=[flap]))]


def _fig21c_flows() -> List[dict]:
    flows = []
    for vm in range(2):
        for src, dst in (("h0", "h1"), ("h1", "h0")):
            flows.append({"src_host": src, "dst_host": dst,
                          "src_vm": vm, "dst_vm": vm, "protocol": "tcp",
                          "offered_bps": 400e6})
    return flows


def _fig21c_scenarios(quick: bool) -> LabeledScenarios:
    # Graceful degradation, measured: the fig22 rig under cluster-scope
    # faults.  TCP flows, so a flapped uplink is ridden out by bond
    # failover plus the retransmit queue rather than counted straight
    # as loss, while a fabric partition can only surface as drops.
    warmup = 0.05 if quick else 0.1
    duration = 0.08 if quick else 0.2
    at = warmup + duration * 0.25
    outage = duration * 0.25
    hosts = [{"name": name, "vm_count": 2, "ports": 2}
             for name in ("h0", "h1")]
    base = Scenario(mode="cluster", hosts=hosts, flows=_fig21c_flows(),
                    fabric={"uplink_gbps": 10.0, "latency_s": 2e-5},
                    warmup=warmup, duration=duration)
    flap = {"kind": "uplink_down", "at": at, "duration": outage,
            "host": "h0", "port": 0}
    cut = {"kind": "fabric_partition", "at": at, "duration": outage,
           "groups": [["h0"], ["h1"]]}
    return [("baseline", base),
            ("uplink-flap", base.with_(faults=[flap])),
            ("partition", base.with_(faults=[cut]))]


# ----------------------------------------------------------------------
# row builders (results -> the table the paper's plot reads)
# ----------------------------------------------------------------------
def _fig06_rows(results: Dict[str, RunResult]) -> Rows:
    return (["config", "Mbps", "dom0%", "guest%", "xen%"],
            [[label, r.throughput_bps / 1e6, r.cpu["dom0"],
              r.cpu["guest"], r.cpu["xen"]]
             for label, r in results.items()])


def _fig07_rows(results: Dict[str, RunResult]) -> Rows:
    rows = []
    for label, result in results.items():
        for kind, rate in sorted(result.exit_cycles_per_second.items(),
                                 key=lambda kv: -kv[1]):
            rows.append([label, kind, rate / 1e6,
                         result.exit_counts.get(kind, 0)])
    return ["config", "exit kind", "Mcycles/s", "exits"], rows


def _fig08_rows(results: Dict[str, RunResult]) -> Rows:
    return (["policy", "Mbps", "CPU%", "loss%", "intr Hz", "lat us"],
            [[label, r.throughput_bps / 1e6, r.total_cpu_percent,
              r.loss_rate * 100, r.interrupt_hz, r.latency_mean * 1e6]
             for label, r in results.items()])


def _fig09_rows(results: Dict[str, RunResult]) -> Rows:
    return (["policy", "Mbps", "CPU%", "intr Hz"],
            [[label, r.throughput_bps / 1e6, r.total_cpu_percent,
              r.interrupt_hz] for label, r in results.items()])


def _fig10_rows(results: Dict[str, RunResult]) -> Rows:
    rows = []
    for label, r in results.items():
        tx_gbps = r.throughput_gbps / max(1e-9, 1 - r.loss_rate)
        rows.append([label, tx_gbps, r.throughput_gbps,
                     r.loss_rate * 100, r.interrupt_hz,
                     r.total_cpu_percent])
    return (["policy", "TX Gbps", "RX Gbps", "loss%", "intr Hz", "CPU%"],
            rows)


def _totals_rows(results: Dict[str, RunResult], first: str) -> Rows:
    return ([first, "Gbps", "dom0%", "guest%", "xen%", "total%"],
            [[label, r.throughput_gbps, r.cpu.get("dom0", 0.0),
              r.cpu.get("guest", r.cpu.get("native", 0.0)),
              r.cpu.get("xen", 0.0), r.total_cpu_percent]
             for label, r in results.items()])


def _fig12_rows(results: Dict[str, RunResult]) -> Rows:
    return _totals_rows(results, "config")


def _intervm_rows(results: Dict[str, RunResult]) -> Rows:
    return (["msg bytes", "Gbps", "CPU%", "Gbps/CPU%"],
            [[label, r.throughput_gbps, r.total_cpu_percent,
              r.throughput_gbps / r.total_cpu_percent
              if r.total_cpu_percent else 0.0]
             for label, r in results.items()])


def _scaling_rows(results: Dict[str, RunResult]) -> Rows:
    return _totals_rows(results, "VMs")


def _pv_scaling_rows(results: Dict[str, RunResult]) -> Rows:
    return (["VMs", "Gbps", "dom0%", "guest%", "loss%"],
            [[label, r.throughput_gbps, r.cpu["dom0"], r.cpu["guest"],
              r.loss_rate * 100] for label, r in results.items()])


def _fig19_rows(results: Dict[str, RunResult]) -> Rows:
    return (["VMs", "Gbps", "dom0%", "loss%"],
            [[label, r.throughput_gbps, r.cpu["dom0"],
              r.loss_rate * 100] for label, r in results.items()])


def migration_timeline_rows(result: RunResult,
                            bucket: float = 0.5) -> List[List[object]]:
    """The Figs. 20-21 table: per-bucket Mbps and dom0% around the
    migration, from the run's sampled timelines."""
    rx = series_from_timeline(result.extras["timeline"], "rx_bytes")
    dom0 = series_from_timeline(result.extras["timeline"], "dom0_cycles")
    clock_hz = CostModel().clock_hz
    rows: List[List[object]] = []
    if not rx.times:
        return rows
    index = 1
    while index * bucket <= rx.times[-1]:
        t = index * bucket
        mbps = rx.window_sum(t - bucket, t) * 8 / bucket / 1e6
        dom0_pct = dom0.window_sum(t - bucket, t) / bucket / clock_hz * 100
        rows.append([f"{t:.1f}", mbps, dom0_pct])
        index += 1
    return rows


def _fig22_rows(results: Dict[str, RunResult]) -> Rows:
    rows = []
    for label, r in results.items():
        fabric = r.extras["cluster"]["fabric"]
        rows.append([label, r.throughput_gbps, r.loss_rate * 100,
                     r.latency_mean * 1e6, fabric["forwarded"],
                     fabric["dropped"] + fabric["unknown_dst"]])
    return (["flow pairs", "Gbps", "loss%", "lat us", "fabric frames",
             "fabric drops"], rows)


def _fig21c_rows(results: Dict[str, RunResult]) -> Rows:
    rows = []
    for label, r in results.items():
        fabric = r.extras["cluster"]["fabric"]
        faults = r.extras.get("faults", {})
        rows.append([label, r.throughput_gbps, r.loss_rate * 100,
                     fabric["dropped"] + fabric["unknown_dst"],
                     faults.get("fabric_drained", 0),
                     faults.get("uplink_failovers", 0)])
    return (["fault", "Gbps", "loss%", "fabric drops", "drained",
             "failovers"], rows)


def _migration_rows(results: Dict[str, RunResult]) -> Rows:
    timeline = results.get("timeline")
    return (["t (s)", "Mbps", "dom0%"],
            migration_timeline_rows(timeline) if timeline is not None
            else [])


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
FIGURES: Dict[str, Figure] = {
    figure.name: figure for figure in [
        Figure("fig06", "SR-IOV with 2.6.18 HVM guests, single 1 GbE port",
               _fig06_scenarios, _fig06_rows),
        Figure("fig07", "VM-exit cycles/second by exit kind",
               _fig07_scenarios, _fig07_rows),
        Figure("fig08", "UDP_STREAM vs interrupt-coalescing policy",
               _fig08_scenarios, _fig08_rows),
        Figure("fig09", "TCP_STREAM vs interrupt-coalescing policy",
               _fig09_scenarios, _fig09_rows),
        Figure("fig10", "inter-VM RX under coalescing policies",
               _fig10_scenarios, _fig10_rows),
        Figure("fig12", "optimizations at aggregate 10 GbE (10 VMs)",
               _fig12_scenarios, _fig12_rows),
        Figure("fig13", "SR-IOV inter-VM throughput vs message size",
               _fig13_scenarios, _intervm_rows),
        Figure("fig14", "PV inter-VM throughput vs message size",
               _fig14_scenarios, _intervm_rows),
        Figure("fig15", "SR-IOV scalability, HVM guests, aggregate 10 GbE",
               _fig15_scenarios, _scaling_rows),
        Figure("fig16", "SR-IOV scalability, PVM guests, aggregate 10 GbE",
               _fig16_scenarios, _scaling_rows),
        Figure("fig17", "PV NIC scalability, HVM guests",
               _fig17_scenarios, _pv_scaling_rows),
        Figure("fig18", "PV NIC scalability, PVM guests",
               _fig18_scenarios, _pv_scaling_rows),
        Figure("fig19", "VMDq scalability (82598, 8 queue pairs)",
               _fig19_scenarios, _fig19_rows),
        Figure("fig20", "PV migration timeline (0.5 s buckets)",
               _fig20_scenarios, _migration_rows),
        Figure("fig21", "DNIS migration timeline (0.5 s buckets)",
               _fig21_scenarios, _migration_rows),
        Figure("fig21f", "DNIS migration timeline under an injected "
                         "VF link flap",
               _fig21f_scenarios, _migration_rows),
        Figure("fig21c", "two-host cluster throughput under injected "
                         "uplink flap and fabric partition",
               _fig21c_scenarios, _fig21c_rows),
        Figure("fig22", "cross-host SR-IOV scaling over a 10 GbE ToR "
                        "(extension beyond the paper)",
               _fig22_scenarios, _fig22_rows),
    ]
}


def resolve_names(only: Optional[Sequence[str]] = None) -> List[str]:
    """Validated figure names, in registry order."""
    if not only:
        return list(FIGURES)
    unknown = [name for name in only if name not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figures: {', '.join(unknown)} "
                         f"(available: {', '.join(FIGURES)})")
    return [name for name in FIGURES if name in set(only)]


def run_figure(name: str, *, quick: bool = False, jobs: int = 1,
               cache: Optional[ResultCache] = None,
               costs: Optional[CostModel] = None,
               audit: bool = True) -> Dict[str, RunResult]:
    """One figure's results, keyed by series label (the benchmarks'
    entrypoint).  Labels whose task failed under supervision are
    absent from the mapping."""
    labeled = FIGURES[name].scenarios(quick)
    outcomes, _ = run_sweep([scenario for _, scenario in labeled],
                            costs=costs, jobs=jobs, cache=cache,
                            audit=audit)
    return {label: outcome.result
            for (label, _), outcome in zip(labeled, outcomes)
            if outcome.result is not None}


def figure_artifact(name: str, results: Dict[str, RunResult],
                    quick: bool) -> Dict[str, object]:
    """The JSON document ``repro figures`` writes for one figure."""
    figure = FIGURES[name]
    columns, rows = figure.rows(results)
    return {
        "schema": FIGURE_SCHEMA,
        "figure": name,
        "title": figure.title,
        "quick": quick,
        "columns": columns,
        "rows": rows,
        "results": {label: result.to_dict()
                    for label, result in results.items()},
    }


def generate_figures(
    names: Sequence[str],
    *,
    quick: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    costs: Optional[CostModel] = None,
    out_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    supervise=None,
    checkpoint=None,
    audit: bool = True,
    hub=None,
) -> tuple[Dict[str, Dict[str, object]], SweepStats]:
    """Regenerate a batch of figures through one shared campaign.

    All selected figures' scenarios go into a single :func:`run_sweep`
    call, so the pool parallelizes *across* figures and configurations
    shared by two figures simulate once.  Artifacts are written as
    ``<out_dir>/<name>.json`` with canonical formatting — byte-identical
    across ``--jobs`` settings and cache states.

    A cell whose task terminally failed under supervision is *missing*
    from its figure (warned through ``progress``) rather than fatal:
    the remaining cells still render, and a later ``--resume`` of the
    same campaign fills the hole without recomputing the rest.
    """
    say = progress or (lambda message: None)
    batches: List[Tuple[str, LabeledScenarios]] = [
        (name, FIGURES[name].scenarios(quick)) for name in names]
    flat: List[Scenario] = [scenario
                            for _, labeled in batches
                            for _, scenario in labeled]
    outcomes, stats = run_sweep(flat, costs=costs, jobs=jobs, cache=cache,
                                progress=progress, supervise=supervise,
                                checkpoint=checkpoint, audit=audit,
                                hub=hub)
    artifacts: Dict[str, Dict[str, object]] = {}
    cursor = 0
    for name, labeled in batches:
        window = outcomes[cursor:cursor + len(labeled)]
        cursor += len(labeled)
        results = {}
        for (label, _), outcome in zip(labeled, window):
            if outcome.result is None:
                why = outcome.task.error if outcome.task else "no result"
                say(f"warning: {name} is missing cell {label!r} ({why})")
                continue
            results[label] = outcome.result
        artifacts[name] = figure_artifact(name, results, quick)
        if out_dir is not None:
            root = Path(out_dir)
            root.mkdir(parents=True, exist_ok=True)
            path = root / f"{name}.json"
            path.write_text(json.dumps(artifacts[name], sort_keys=True,
                                       indent=1) + "\n")
    return artifacts, stats
