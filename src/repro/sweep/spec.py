"""Declarative sweep specifications.

A sweep spec is a JSON document (or plain dict) describing a family of
scenarios without writing a loop::

    {
      "base": {"mode": "sriov", "ports": 10, "warmup": 0.6,
               "duration": 0.4, "policy": {"kind": "fixed_itr",
                                           "hz": 2000}},
      "grid": {"vm_count": [10, 20, 40, 60], "kind": ["hvm", "pvm"]},
      "list": [{"kernel": "2.6.28"}, {"kernel": "2.6.18"}]
    }

Expansion is the cartesian product of the ``grid`` axes (in the order
they appear in the document), applied on top of each ``list`` case
(explicit overrides), applied on top of ``base`` — here 4 x 2 x 2 = 16
scenarios.  Later layers win on field collisions: base < list case <
grid assignment.  Every expanded dict must be a valid
:class:`~repro.api.Scenario`; a typo'd field name fails the whole spec
up front rather than silently sweeping nothing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.api import Scenario

_SPEC_KEYS = {"base", "grid", "list"}


@dataclass
class SweepSpec:
    """A parsed sweep specification."""

    base: Dict[str, object] = field(default_factory=dict)
    #: axis name -> list of values, expanded as a cartesian product in
    #: document order.
    grid: Dict[str, Sequence[object]] = field(default_factory=dict)
    #: explicit scenario overrides, each expanded against the grid.
    cases: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise ValueError(f"unknown sweep spec keys: {sorted(unknown)} "
                             f"(use {sorted(_SPEC_KEYS)})")
        base = dict(data.get("base") or {})
        grid = data.get("grid") or {}
        if not isinstance(grid, Mapping):
            raise ValueError("'grid' must be a dict of axis -> values")
        for axis, values in grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                    values, Sequence):
                raise ValueError(f"grid axis {axis!r} must map to a list "
                                 f"of values, got {values!r}")
            if not values:
                raise ValueError(f"grid axis {axis!r} is empty: the "
                                 f"product would be zero scenarios")
        cases = data.get("list") or []
        if not isinstance(cases, Sequence) or isinstance(cases, (str, bytes)):
            raise ValueError("'list' must be a list of override dicts")
        return cls(base=base,
                   grid={k: list(v) for k, v in grid.items()},
                   cases=[dict(c) for c in cases])

    def expand(self) -> List[Scenario]:
        """All scenarios the spec describes, in deterministic order:
        list cases outermost, grid axes in document order innermost."""
        cases = self.cases or [{}]
        axes = list(self.grid.keys())
        combos = list(itertools.product(*(self.grid[a] for a in axes)))
        scenarios: List[Scenario] = []
        for case in cases:
            for combo in combos:
                merged = {**self.base, **case, **dict(zip(axes, combo))}
                scenarios.append(Scenario.from_dict(merged))
        return scenarios

    def __len__(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count * (len(self.cases) or 1)
