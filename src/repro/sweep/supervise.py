"""Supervised task execution: watchdogs, retries, pool respawn.

The campaign engine hands each distinct job to :func:`run_supervised`,
which owns the ``ProcessPoolExecutor`` and survives everything a worker
can do to it:

* **Crashes** (``os._exit``, SIGKILL, a segfaulting extension) surface
  as ``BrokenProcessPool`` on every in-flight future.  The broken pool
  is discarded and respawned; the crashed task is retried with bounded
  exponential backoff (jitter seeded from the task key, so retry
  timing is reproducible), and innocent tasks that were sharing the
  pool are re-queued without being charged an attempt.
* **Hangs** are caught by a watchdog deadline per in-flight task
  (``task_timeout``).  A stock executor cannot cancel a *running*
  future, so the watchdog terminates the pool's worker processes —
  deliberately converting the hang into the crash path above — and the
  overdue task is retried (terminal status ``timed_out`` once retries
  are exhausted).
* **Deterministic failures** (an ordinary exception raised by the
  payload — an invalid scenario, an
  :class:`~repro.audit.InvariantViolation`) are *not* retried: the
  same inputs would fail the same way.  They produce a ``failed``
  outcome carrying the error text.

Every task ends with a structured :class:`TaskOutcome` — ``ok``,
``retried`` (ok, but needed more than one attempt), ``timed_out`` or
``failed`` — which the campaign summary and the CLI exit code consume.
Results remain keyed by task, never by completion order, so
supervision cannot perturb the engine's byte-identical determinism
contract.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Terminal outcome statuses.
STATUS_OK = "ok"
STATUS_RETRIED = "retried"
STATUS_TIMED_OUT = "timed_out"
STATUS_FAILED = "failed"


@dataclass
class TaskOutcome:
    """How one supervised task ended."""

    key: str
    status: str = "pending"
    #: Submissions made (1 = clean first try).
    attempts: int = 0
    #: Terminal error text for timed_out/failed outcomes.
    error: Optional[str] = None
    #: Worker-pool respawns this task's crashes caused.
    respawns: int = 0

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_RETRIED)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"key": self.key, "status": self.status,
                                   "attempts": self.attempts}
        if self.error is not None:
            data["error"] = self.error
        return data


@dataclass
class SuperviseConfig:
    """Supervision knobs (the CLI's --task-timeout / --max-retries)."""

    #: Per-task wall-clock timeout in seconds; None = no watchdog.
    task_timeout: Optional[float] = None
    #: Extra attempts after the first for crash-type failures
    #: (a task is submitted at most ``1 + max_retries`` times).
    max_retries: int = 2
    #: Exponential backoff: base * 2^(attempt-1), capped, ±50% jitter.
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    #: Future-polling cadence of the watchdog loop.
    poll_interval: float = 0.2

    def backoff(self, key: str, attempt: int) -> float:
        """Deterministic backoff-with-jitter for a task's retry.

        Jitter is seeded from (key, attempt) so a re-run of the same
        campaign retries on the same schedule — no global RNG state is
        consumed.
        """
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** max(0, attempt - 1)))
        jitter = random.Random(f"{key}:{attempt}").uniform(0.5, 1.5)
        return delay * jitter


@dataclass
class SuperviseStats:
    """Aggregate counts across one supervised batch."""

    ok: int = 0
    retried: int = 0
    timed_out: int = 0
    failed: int = 0
    respawns: int = 0
    #: Total campaign wall-clock across the batch, in host seconds.
    wall_s: float = 0.0
    #: Most tasks observed in flight at once (1 for in-process runs).
    peak_workers: int = 0

    @property
    def failures(self) -> int:
        return self.timed_out + self.failed

    def summary(self) -> str:
        """One line, machine-parseable (the CLI prints it; CI greps).

        New fields append after ``respawns=`` — existing consumers
        match prefixes of this line, so the order is load-bearing.
        """
        return (f"task summary: ok={self.ok} retried={self.retried} "
                f"timed_out={self.timed_out} failed={self.failed} "
                f"respawns={self.respawns} wall_s={self.wall_s:.2f} "
                f"peak_workers={self.peak_workers}")

    @classmethod
    def of(cls, outcomes: Sequence[TaskOutcome],
           respawns: int = 0, wall_s: float = 0.0,
           peak_workers: int = 0) -> "SuperviseStats":
        stats = cls(respawns=respawns, wall_s=wall_s,
                    peak_workers=peak_workers)
        for outcome in outcomes:
            if outcome.status == STATUS_OK:
                stats.ok += 1
            elif outcome.status == STATUS_RETRIED:
                stats.retried += 1
            elif outcome.status == STATUS_TIMED_OUT:
                stats.timed_out += 1
            elif outcome.status == STATUS_FAILED:
                stats.failed += 1
        return stats


def run_supervised(
    fn: Callable[[dict], dict],
    tasks: Sequence[Tuple[str, dict]],
    *,
    jobs: int = 1,
    config: Optional[SuperviseConfig] = None,
    on_result: Optional[Callable[[str, TaskOutcome, Optional[dict]],
                                 None]] = None,
    say: Optional[Callable[[str], None]] = None,
    hub=None,
) -> Tuple[Dict[str, dict], Dict[str, TaskOutcome], SuperviseStats]:
    """Run ``fn(payload)`` for every (key, payload) task, supervised.

    Returns ``(results, outcomes, stats)``: results keyed by task key
    (absent for tasks that ultimately failed), a TaskOutcome per task,
    and the batch :class:`SuperviseStats` (outcome counts, pool
    respawns, total wall time, peak concurrent workers).  ``on_result``
    fires once per task as it reaches a terminal state — the runner
    uses it to write the cache entry and the campaign checkpoint
    immediately, so a kill mid-campaign preserves every completed
    cell.  ``hub`` is an optional
    :class:`~repro.obs.campaign.hub.TelemetryHub`: it is told about
    submissions and terminal outcomes and polled from the supervision
    loop so worker spool records stream in live.  Supervision is
    observation-only from the engine's view either way — results stay
    keyed by task, never by completion order.
    """
    cfg = config or SuperviseConfig()
    tell = say or (lambda message: None)
    started = time.monotonic()
    results: Dict[str, dict] = {}
    outcomes = {key: TaskOutcome(key=key) for key, _ in tasks}

    def finish(key: str, status: str, error: Optional[str] = None) -> None:
        outcome = outcomes[key]
        outcome.status = status
        outcome.error = error
        if on_result is not None:
            on_result(key, outcome, results.get(key))
        if hub is not None:
            hub.task_terminal(outcome)

    if jobs <= 1 or len(tasks) <= 1:
        # In-process: no watchdog (a thread cannot preempt itself) and
        # no crash-retry (a worker crash here is *our* crash), but the
        # same deterministic-failure capture and outcome surface.
        for key, payload in tasks:
            outcomes[key].attempts = 1
            if hub is not None:
                hub.task_running(key, 1)
            try:
                results[key] = fn(payload)
            except Exception as exc:  # noqa: BLE001 - outcome surface
                finish(key, STATUS_FAILED,
                       f"{type(exc).__name__}: {exc}")
            else:
                finish(key, STATUS_OK)
        return results, outcomes, SuperviseStats.of(
            list(outcomes.values()), wall_s=time.monotonic() - started,
            peak_workers=1 if tasks else 0)

    return _run_pool(fn, tasks, cfg, results, outcomes, finish, jobs,
                     tell, hub, started)


def _run_pool(fn, tasks, cfg, results, outcomes, finish, jobs, tell,
              hub=None, started: Optional[float] = None):
    started = time.monotonic() if started is None else started
    pending: List[Tuple[str, dict]] = list(tasks)
    # Backoff queue: (ready_time, tiebreak, key, payload).
    backoff: List[Tuple[float, int, str, dict]] = []
    tiebreak = itertools.count()
    payloads = dict(tasks)
    width = min(jobs, len(tasks))
    executor = ProcessPoolExecutor(max_workers=width)
    respawns = 0
    peak_workers = 0
    inflight: Dict[object, Tuple[str, float]] = {}

    def transient_failure(key: str, kind: str, charge: bool = True) -> None:
        """A crash/timeout: retry with backoff, or finish terminally."""
        outcome = outcomes[key]
        if not charge:
            # An innocent task killed by a pool-mate's crash or a
            # watchdog pool termination: re-queue free of charge.
            outcome.attempts -= 1
            pending.append((key, payloads[key]))
            return
        if outcome.attempts > cfg.max_retries:
            if kind == "timeout":
                finish(key, STATUS_TIMED_OUT,
                       f"timed out after {cfg.task_timeout}s x "
                       f"{outcome.attempts} attempts")
            else:
                finish(key, STATUS_FAILED,
                       f"worker crashed ({kind}) x {outcome.attempts} "
                       "attempts")
            return
        delay = cfg.backoff(key, outcome.attempts)
        tell(f"  retrying [{key[:12]}] in {delay:.2f}s "
             f"(attempt {outcome.attempts} {kind})")
        heapq.heappush(backoff, (time.monotonic() + delay,
                                 next(tiebreak), key, payloads[key]))

    def respawn_pool() -> None:
        nonlocal executor, respawns
        _shutdown_pool(executor)
        respawns += 1
        executor = ProcessPoolExecutor(max_workers=width)

    try:
        while pending or inflight or backoff:
            now = time.monotonic()
            while backoff and backoff[0][0] <= now:
                _, _, key, payload = heapq.heappop(backoff)
                pending.append((key, payload))
            while pending and len(inflight) < width:
                key, payload = pending.pop(0)
                outcomes[key].attempts += 1
                future = executor.submit(fn, payload)
                inflight[future] = (key, time.monotonic())
                if hub is not None:
                    hub.task_running(key, outcomes[key].attempts)
            peak_workers = max(peak_workers, len(inflight))
            if hub is not None:
                hub.poll()
            if not inflight:
                if backoff:
                    time.sleep(max(0.0, min(cfg.poll_interval,
                                            backoff[0][0]
                                            - time.monotonic())))
                continue
            done, _ = wait(list(inflight), timeout=cfg.poll_interval,
                           return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                key, _ = inflight.pop(future)
                try:
                    results[key] = future.result()
                except BrokenProcessPool:
                    broken = True
                    outcomes[key].respawns += 1
                    transient_failure(key, "BrokenProcessPool")
                except Exception as exc:  # noqa: BLE001 - outcome surface
                    # Deterministic payload failure: never retried.
                    finish(key, STATUS_FAILED,
                           f"{type(exc).__name__}: {exc}")
                else:
                    outcome = outcomes[key]
                    finish(key, STATUS_OK if outcome.attempts == 1
                           else STATUS_RETRIED)
            if broken:
                # Every other in-flight future on a broken pool is
                # doomed too; re-queue them without an attempt charge.
                for future, (key, _) in list(inflight.items()):
                    transient_failure(key, "pool-mate crash",
                                      charge=False)
                inflight.clear()
                respawn_pool()
                continue
            if cfg.task_timeout is None:
                continue
            now = time.monotonic()
            overdue = [(future, key) for future, (key, started)
                       in inflight.items()
                       if now - started > cfg.task_timeout]
            if not overdue:
                continue
            # A running future cannot be cancelled: terminate the
            # workers (everything in flight dies) and respawn.
            overdue_keys = {key for _, key in overdue}
            tell(f"  watchdog: {len(overdue)} task(s) over "
                 f"{cfg.task_timeout}s; terminating workers")
            for future, (key, _) in list(inflight.items()):
                transient_failure(key, "timeout",
                                  charge=key in overdue_keys)
            inflight.clear()
            respawn_pool()
    finally:
        _shutdown_pool(executor)
    return results, outcomes, SuperviseStats.of(
        list(outcomes.values()), respawns,
        wall_s=time.monotonic() - started, peak_workers=peak_workers)


def _shutdown_pool(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on wedged workers."""
    processes = list(getattr(executor, "_processes", {}).values())
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - interpreter teardown races
        pass
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
