"""The content-addressed result cache.

A run is a pure function of (scenario, cost model) — the simulator is
deterministic per seed, and the seed is a scenario field.  So results
are cached under a content key::

    key = sha256(canonical_json({"scenario": ...,  # Scenario.to_dict()
                                 "costs": ...,     # CostModel as dict
                                 "schema": ...}))  # result schema tag

and a warm rerun of any campaign executes zero simulations.  The schema
tag (:data:`repro.core.experiment.RESULT_SCHEMA`) is folded into the
key rather than checked on read: when the result layout changes, stale
entries become unreachable instead of half-parseable.

Layout on disk: ``<root>/<key[:2]>/<key>.json``, one self-describing
file per entry (the scenario and costs ride along with the result, so
a cache directory doubles as a browsable record of every configuration
ever simulated).  Writes are atomic (tmp + rename) so a killed sweep
never leaves a truncated entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.core.costs import CostModel
from repro.core.experiment import RESULT_SCHEMA

#: Version tag for the cache *entry* layout (the envelope around the
#: result).  Unknown envelopes are treated as misses, never errors.
ENTRY_SCHEMA = "repro-cache-entry/1"

def default_cache_dir() -> str:
    """The cache root, resolving ``$REPRO_CACHE_DIR`` at *call* time.

    Construction-time resolution matters: sweep pool workers and
    monkeypatched tests set the variable after ``repro`` is imported,
    and an import-time snapshot would silently ignore them.
    """
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


#: Import-time snapshot of :func:`default_cache_dir`, kept for
#: backwards compatibility.  Prefer the function: this constant does
#: not see ``REPRO_CACHE_DIR`` changes made after import.
DEFAULT_CACHE_DIR = default_cache_dir()


def canonical_json(obj: object) -> str:
    """The one JSON encoding used for hashing and artifacts.

    Sorted keys, no whitespace, NaN/Infinity rejected: two processes
    serializing the same value must produce the same bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def costs_to_dict(costs: Optional[CostModel]) -> Dict[str, object]:
    """The cost model as the plain dict the cache key hashes."""
    return dataclasses.asdict(costs if costs is not None else CostModel())


def job_key(scenario_dict: Mapping[str, object],
            costs_dict: Mapping[str, object]) -> str:
    """The content address of one (scenario, cost model) job."""
    payload = {"scenario": dict(scenario_dict), "costs": dict(costs_dict),
               "schema": RESULT_SCHEMA}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class ResultCache:
    """On-disk store of run results, addressed by :func:`job_key`."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root if root is not None else default_cache_dir())
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove ``<key>.tmp.<pid>`` debris left by killed writers.

        A write that died between creating its tmp file and the atomic
        rename leaves the tmp behind forever (no process will retry the
        same pid's name).  Any tmp file found at construction is, by
        construction, orphaned: live writers rename within one ``put``.
        """
        for stale in self.root.glob("*/*.tmp.*"):
            try:
                stale.unlink()
            except OSError:
                pass  # concurrent sweep, or permissions: harmless

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached result dict, or None on any kind of miss.

        A corrupt or foreign file is a miss, not an error: the engine
        re-simulates and overwrites it.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if (not isinstance(entry, dict)
                or entry.get("schema") != ENTRY_SCHEMA
                or entry.get("key") != key):
            return None
        result = entry.get("result")
        return result if isinstance(result, dict) else None

    def put(self, key: str, scenario_dict: Mapping[str, object],
            costs_dict: Mapping[str, object],
            result_dict: Mapping[str, object]) -> Path:
        """Store one result atomically; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "scenario": dict(scenario_dict),
            "costs": dict(costs_dict),
            "result": dict(result_dict),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w") as handle:
                json.dump(entry, handle, sort_keys=True, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
