"""The content-addressed result cache.

A run is a pure function of (scenario, cost model) — the simulator is
deterministic per seed, and the seed is a scenario field.  So results
are cached under a content key::

    key = sha256(canonical_json({"scenario": ...,  # Scenario.to_dict()
                                 "costs": ...,     # CostModel as dict
                                 "schema": ...}))  # result schema tag

and a warm rerun of any campaign executes zero simulations.  The schema
tag (:data:`repro.core.experiment.RESULT_SCHEMA`) is folded into the
key rather than checked on read: when the result layout changes, stale
entries become unreachable instead of half-parseable.

Layout on disk: ``<root>/<key[:2]>/<key>.json``, one self-describing
file per entry (the scenario and costs ride along with the result, so
a cache directory doubles as a browsable record of every configuration
ever simulated).  Writes are crash-safe: the entry is written to a
per-writer tmp name (pid + thread id, so concurrent sweeps sharing
``$REPRO_CACHE_DIR`` never interleave), fsynced, then atomically
renamed into place.  Reads verify a sha256 checksum and byte length of
the result payload; an entry that fails verification — truncated by a
power loss, bit-flipped by a bad disk — is *quarantined* under
``<root>/corrupt/`` (counted in :attr:`ResultCache.corruption`) and
reported as a miss, so the engine transparently re-simulates instead
of crashing or, worse, trusting a poisoned result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.core.costs import CostModel
from repro.core.experiment import RESULT_SCHEMA

#: Version tag for the cache *entry* layout (the envelope around the
#: result).  Unknown envelopes are treated as misses, never errors.
#: /2 added the sha256/length verification footer; /1 entries predate
#: it, cannot be verified, and read as plain misses (not corruption).
ENTRY_SCHEMA = "repro-cache-entry/2"

#: How long (seconds since last mtime) an orphaned tmp file whose
#: writer pid cannot be determined must sit before the stale sweep
#: removes it.
_STALE_TMP_AGE = 3600.0

def default_cache_dir() -> str:
    """The cache root, resolving ``$REPRO_CACHE_DIR`` at *call* time.

    Construction-time resolution matters: sweep pool workers and
    monkeypatched tests set the variable after ``repro`` is imported,
    and an import-time snapshot would silently ignore them.
    """
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


#: Import-time snapshot of :func:`default_cache_dir`, kept for
#: backwards compatibility.  Prefer the function: this constant does
#: not see ``REPRO_CACHE_DIR`` changes made after import.
DEFAULT_CACHE_DIR = default_cache_dir()


def canonical_json(obj: object) -> str:
    """The one JSON encoding used for hashing and artifacts.

    Sorted keys, no whitespace, NaN/Infinity rejected: two processes
    serializing the same value must produce the same bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def costs_to_dict(costs: Optional[CostModel]) -> Dict[str, object]:
    """The cost model as the plain dict the cache key hashes."""
    return dataclasses.asdict(costs if costs is not None else CostModel())


def job_key(scenario_dict: Mapping[str, object],
            costs_dict: Mapping[str, object]) -> str:
    """The content address of one (scenario, cost model) job."""
    payload = {"scenario": dict(scenario_dict), "costs": dict(costs_dict),
               "schema": RESULT_SCHEMA}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _writer_pid(name: str) -> Optional[int]:
    """The pid embedded in a ``<key>.tmp.<pid>[.<tid>]`` name, if any."""
    _, _, rest = name.partition(".tmp.")
    pid_text = rest.split(".", 1)[0]
    try:
        return int(pid_text)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned elsewhere (or unprobeable): keep
    return True


class ResultCache:
    """On-disk store of run results, addressed by :func:`job_key`."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root if root is not None else default_cache_dir())
        self.root.mkdir(parents=True, exist_ok=True)
        #: Entries that failed checksum/length verification and were
        #: moved to ``corrupt/`` — the ``cache.corruption`` counter.
        self.corruption = 0
        #: Quarantine destinations, in discovery order.
        self.quarantined: List[Path] = []
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove ``<key>.tmp.<pid>.<tid>`` debris left by *dead*
        writers.

        A write that died between creating its tmp file and the atomic
        rename leaves the tmp behind forever (no process retries the
        same name).  But "found at construction" does not imply
        orphaned: a concurrent sweep sharing this cache directory may
        be mid-``put`` right now, and unlinking its tmp would make its
        rename fail.  So the sweep only removes a tmp whose embedded
        writer pid is provably dead, falling back to an age gate when
        the name carries no readable pid.
        """
        for stale in self.root.glob("*/*.tmp.*"):
            pid = _writer_pid(stale.name)
            if pid is not None:
                if _pid_alive(pid):
                    continue  # live writer (possibly this process)
            else:
                try:
                    import time
                    age = time.time() - stale.stat().st_mtime
                except OSError:
                    continue  # already gone
                if age < _STALE_TMP_AGE:
                    continue
            try:
                stale.unlink()
            except OSError:
                pass  # concurrent sweep, or permissions: harmless

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def quarantine_dir(self) -> Path:
        return self.root / "corrupt"

    def _quarantine(self, path: Path) -> None:
        """Move a failed entry under ``corrupt/`` and count it.

        The move is atomic (same filesystem), so a concurrent reader
        sees either the corrupt entry (and quarantines it itself — the
        second mover just finds the file gone) or no entry at all.
        """
        self.corruption += 1
        destination = self.quarantine_dir() / path.name
        try:
            self.quarantine_dir().mkdir(parents=True, exist_ok=True)
            if destination.exists():
                destination = self.quarantine_dir() / (
                    f"{path.name}.{os.getpid()}")
            os.replace(path, destination)
            self.quarantined.append(destination)
        except OSError:
            pass  # racing quarantiner won, or permissions: still a miss

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached result dict, or None on any kind of miss.

        A foreign or older-schema file is a plain miss (the engine
        re-simulates and overwrites it).  An entry of *this* schema
        that fails JSON parsing, key match, or checksum/length
        verification is treated as corruption: quarantined under
        ``corrupt/``, counted, and reported as a miss — never raised.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                raw = handle.read()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
        except ValueError:
            # Truncated mid-write or bit-flipped: unreadable bytes in
            # an entry slot are corruption, whatever schema they were.
            self._quarantine(path)
            return None
        if not isinstance(entry, dict) or entry.get("schema") != ENTRY_SCHEMA:
            return None  # foreign/legacy envelope: plain miss
        result = entry.get("result")
        if (entry.get("key") != key or not isinstance(result, dict)
                or not self._verify(entry, result)):
            self._quarantine(path)
            return None
        return result

    @staticmethod
    def _payload_footer(result_dict: Mapping[str, object]) -> Dict[str, object]:
        """The verification footer: sha256 + length of the canonical
        result payload."""
        payload = canonical_json(dict(result_dict)).encode()
        return {"sha256": hashlib.sha256(payload).hexdigest(),
                "length": len(payload)}

    @classmethod
    def _verify(cls, entry: Mapping[str, object],
                result: Mapping[str, object]) -> bool:
        try:
            footer = cls._payload_footer(result)
        except (TypeError, ValueError):
            return False  # non-canonicalizable payload
        return (entry.get("sha256") == footer["sha256"]
                and entry.get("length") == footer["length"])

    def put(self, key: str, scenario_dict: Mapping[str, object],
            costs_dict: Mapping[str, object],
            result_dict: Mapping[str, object]) -> Path:
        """Store one result crash-safely; returns the entry path.

        fsync before the atomic rename: after ``put`` returns, a power
        loss can lose the entry but never leave a renamed-but-empty
        file (the rename only lands after the bytes are durable).
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "scenario": dict(scenario_dict),
            "costs": dict(costs_dict),
            "result": dict(result_dict),
            **self._payload_footer(result_dict),
        }
        # pid + thread id: unique per concurrent writer, including two
        # threads of one process sharing a cache root.
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            with open(tmp, "w") as handle:
                json.dump(entry, handle, sort_keys=True, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        corrupt = self.quarantine_dir()
        return sum(1 for path in self.root.glob("*/*.json")
                   if path.parent != corrupt)
