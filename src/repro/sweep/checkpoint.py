"""Campaign checkpoints: atomic, schema-versioned, resumable.

A checkpoint is a small JSON document recording what one campaign was
asked to do (``command`` — enough to reconstruct the scenario list)
and which task keys have completed or terminally failed.  The runner
updates it after *every* task, with the cache entry already written,
so a SIGTERM/SIGKILL at any instant loses at most the task that was in
flight: ``repro sweep --resume <checkpoint>`` (or ``repro figures
--resume``) replays the same campaign, and every completed cell comes
straight out of the content-addressed cache — zero recomputation,
byte-identical artifacts (the cache, not the checkpoint, holds the
results; the checkpoint is the restart recipe plus progress record).

Writes are atomic (per-writer tmp name + rename) like cache entries,
so a kill mid-update leaves the previous consistent checkpoint.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional

CHECKPOINT_SCHEMA = "repro-checkpoint/1"


class CheckpointError(ValueError):
    """An unreadable or foreign checkpoint file."""


class CampaignCheckpoint:
    """Progress record of one campaign, persisted after every task."""

    def __init__(self, path: os.PathLike, command: Mapping[str, object],
                 total: int = 0):
        self.path = Path(path)
        #: How to re-run this campaign: ``{"kind": "sweep"|"figures",
        #: ...}`` with the spec document / figure names inline.
        self.command: Dict[str, object] = dict(command)
        self.total = total
        #: Distinct task keys whose results are durably in the cache
        #: (includes cache hits — a resume counts them as done too).
        self.completed: List[str] = []
        self._completed_set = set()
        #: Terminally failed task keys -> their TaskOutcome dict.
        self.failed: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def mark_completed(self, key: str) -> None:
        if key not in self._completed_set:
            self._completed_set.add(key)
            self.completed.append(key)
            self.failed.pop(key, None)
        self.save()

    def mark_failed(self, key: str, outcome: Mapping[str, object]) -> None:
        if key not in self._completed_set:
            self.failed[key] = dict(outcome)
        self.save()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CHECKPOINT_SCHEMA,
            "command": self.command,
            "total": self.total,
            "completed": list(self.completed),
            "failed": dict(self.failed),
        }

    def save(self) -> None:
        """Atomic write: tmp (pid+tid suffix) + rename."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(
            f"{self.path.name}.tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            with open(tmp, "w") as handle:
                json.dump(self.to_dict(), handle, sort_keys=True, indent=1)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: os.PathLike) -> "CampaignCheckpoint":
        path = Path(path)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
        except ValueError as exc:
            raise CheckpointError(f"checkpoint {path} is not valid JSON: "
                                  f"{exc}")
        if (not isinstance(document, dict)
                or document.get("schema") != CHECKPOINT_SCHEMA):
            raise CheckpointError(
                f"checkpoint {path} has schema "
                f"{document.get('schema') if isinstance(document, dict) else None!r}; "
                f"this build reads {CHECKPOINT_SCHEMA!r}")
        command = document.get("command")
        if not isinstance(command, dict) or "kind" not in command:
            raise CheckpointError(f"checkpoint {path} carries no "
                                  "command record")
        checkpoint = cls(path, command, total=int(document.get("total", 0)))
        for key in document.get("completed") or []:
            if key not in checkpoint._completed_set:
                checkpoint._completed_set.add(key)
                checkpoint.completed.append(key)
        failed = document.get("failed")
        if isinstance(failed, dict):
            checkpoint.failed = {key: dict(value)
                                 for key, value in failed.items()
                                 if isinstance(value, dict)}
        return checkpoint

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CampaignCheckpoint {self.path} "
                f"{len(self.completed)}/{self.total} done, "
                f"{len(self.failed)} failed>")
