"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro sriov --vms 10 --kind hvm
    python -m repro sriov --vms 7 --ports 1 --kernel 2.6.18 --no-opts
    python -m repro pv --vms 20 --single-thread
    python -m repro vmdq --vms 40
    python -m repro intervm --mode sriov --message-bytes 4000
    python -m repro migrate --mode dnis
    python -m repro cluster --hosts 2 --vms-per-host 2 --process-hosts
    python -m repro figures --only fig15 --jobs 4
    python -m repro sweep campaign.json --jobs 8 --out results.json

The single-experiment subcommands build one :class:`repro.api.Scenario`
and run it; ``figures`` and ``sweep`` drive whole campaigns through the
:mod:`repro.sweep` engine — parallel across a process pool, and served
from the content-addressed result cache on reruns.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.api import Scenario, run
from repro.core.experiment import RunResult
from repro.drivers.coalescing import CoalescingPolicy, policy_from_spec

KIND_CHOICES = ("hvm", "pvm")
KERNEL_CHOICES = ("2.6.18", "2.6.28")
PROTOCOL_CHOICES = ("udp", "tcp")


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared observability flags, valid after every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    timing = parent.add_argument_group("measurement window")
    # SUPPRESS: only set when given after the subcommand, so the
    # top-level --warmup/--duration defaults still apply otherwise.
    timing.add_argument("--warmup", type=float, default=argparse.SUPPRESS,
                        help="simulated warmup seconds before measuring")
    timing.add_argument("--duration", type=float, default=argparse.SUPPRESS,
                        help="simulated measurement window seconds")
    group = parent.add_argument_group("observability")
    group.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="write the deterministic metrics snapshot "
                            "(registry + cycle ledger + exit breakdown) "
                            "as JSON")
    group.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the event trace; .jsonl gets JSONL, "
                            "anything else Chrome trace-event JSON "
                            "(chrome://tracing / Perfetto)")
    group.add_argument("--profile", action="store_true",
                       help="print a host-side wall-clock profile of "
                            "simulator callbacks after the run")
    faults = parent.add_argument_group("fault injection")
    faults.add_argument("--fault", action="append", default=[],
                        metavar="SPEC", dest="fault",
                        help="inject a fault, e.g. "
                             "'link_flap:at=2.0,duration=0.5,port=0' "
                             "(repeatable; see 'repro faults' for the "
                             "vocabulary)")
    audit = parent.add_argument_group("invariant auditing")
    audit.add_argument("--no-audit", action="store_true",
                       help="disable the runtime invariant auditor "
                            "(on by default; see docs/robustness.md)")
    audit.add_argument("--audit-interval", type=float, default=None,
                       metavar="SEC",
                       help="additionally audit every SEC simulated "
                            "seconds (default: audit at run end only)")
    return parent


def _campaign_parent() -> argparse.ArgumentParser:
    """Shared campaign-engine flags (figures / sweep)."""
    from repro.sweep.cache import default_cache_dir
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("campaign engine")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="process-pool width (1 = run in-process; "
                            "results are byte-identical either way)")
    group.add_argument("--cache-dir", default=default_cache_dir(),
                       metavar="DIR",
                       help="content-addressed result cache directory "
                            "(default: %(default)s, or $REPRO_CACHE_DIR)")
    group.add_argument("--no-cache", action="store_true",
                       help="simulate everything; neither read nor "
                            "write the cache")
    robust = parent.add_argument_group("supervision")
    robust.add_argument("--task-timeout", type=float, default=None,
                        metavar="SEC",
                        help="per-task wall-clock watchdog; an overdue "
                             "worker is terminated and the task retried "
                             "(default: no timeout)")
    robust.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="extra attempts after the first for worker "
                             "crashes/timeouts (default: %(default)s)")
    robust.add_argument("--checkpoint", default=None, metavar="FILE",
                        help="write an atomic campaign checkpoint after "
                             "every task; resume an interrupted campaign "
                             "with --resume FILE")
    robust.add_argument("--resume", default=None, metavar="FILE",
                        help="resume the campaign recorded in a "
                             "checkpoint file; completed cells come from "
                             "the cache (zero recomputation)")
    robust.add_argument("--no-audit", action="store_true",
                        help="disable the runtime invariant auditor "
                             "inside executed jobs")
    obs = parent.add_argument_group("campaign observability")
    obs.add_argument("--dashboard", action="store_true",
                     help="live in-terminal campaign view (task grid, "
                          "throughput, ETA); degrades to periodic "
                          "one-line summaries when stderr is not a TTY")
    obs.add_argument("--journal", default=None, metavar="FILE",
                     help="append every telemetry record to a "
                          "campaign journal (JSONL; render it with "
                          "'repro report').  Default with --checkpoint/"
                          "--resume: campaign.jsonl next to the "
                          "checkpoint file")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'High Performance Network "
                    "Virtualization with SR-IOV' (HPCA 2010 / JPDC 2012)",
    )
    parser.add_argument("--warmup", type=float, default=1.2,
                        help="simulated warmup seconds before measuring")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="simulated measurement window seconds")
    commands = parser.add_subparsers(dest="command", required=True)
    obs = [_telemetry_parent()]

    sriov = commands.add_parser("sriov", help="SR-IOV receive experiment",
                                parents=obs)
    _add_guest_args(sriov)
    sriov.add_argument("--native", action="store_true",
                       help="run the drivers on bare metal (Fig. 12's "
                            "native baseline)")
    sriov.add_argument("--sim-mode", choices=("exact", "fluid"),
                       default="exact", dest="sim_mode",
                       help="datapath: 'exact' replays every packet as "
                            "an event; 'fluid' collapses steady-state "
                            "windows into per-burst arithmetic with "
                            "byte-identical throughput anchors (see "
                            "docs/performance.md)")

    pv = commands.add_parser("pv", help="PV split-driver experiment",
                             parents=obs)
    pv.add_argument("--vms", type=int, default=10)
    pv.add_argument("--ports", type=int, default=10)
    pv.add_argument("--kind", choices=KIND_CHOICES, default="hvm")
    pv.add_argument("--single-thread", action="store_true",
                    help="use the stock single-threaded netback")

    vmdq = commands.add_parser("vmdq", help="VMDq experiment (Fig. 19)",
                               parents=obs)
    vmdq.add_argument("--vms", type=int, default=10)

    intervm = commands.add_parser("intervm",
                                  help="inter-VM experiment (Figs. 13-14)",
                                  parents=obs)
    intervm.add_argument("--mode", choices=["sriov", "pv"], default="sriov")
    intervm.add_argument("--message-bytes", type=int, default=1500)
    intervm.add_argument("--sim-mode", choices=("exact", "fluid"),
                         default="exact", dest="sim_mode",
                         help="datapath mode (sriov variant only; the "
                              "fluid fast path collapses the loopback "
                              "chain — see docs/performance.md)")

    migrate = commands.add_parser("migrate",
                                  help="live migration (Figs. 20-21)",
                                  parents=obs)
    migrate.add_argument("--mode", choices=["pv", "dnis"], default="dnis")
    migrate.add_argument("--start-at", type=float, default=4.5)

    cluster = commands.add_parser(
        "cluster", parents=obs,
        help="multi-host scale-out over a modeled ToR fabric (fig22)")
    cluster.add_argument("--hosts", type=int, default=2,
                         help="SR-IOV hosts under the ToR "
                              "(default: %(default)s)")
    cluster.add_argument("--vms-per-host", type=int, default=2,
                         help="guests per host, one VF port each "
                              "(default: %(default)s)")
    cluster.add_argument("--uplink-gbps", type=float, default=10.0,
                         help="per-host ToR uplink bandwidth "
                              "(default: %(default)s)")
    cluster.add_argument("--latency-us", type=float, default=20.0,
                         help="one-way fabric latency in microseconds; "
                              "also the engines' sync lookahead "
                              "(default: %(default)s)")
    cluster.add_argument("--offered-mbps", type=float, default=400.0,
                         help="offered load per tenant flow "
                              "(default: %(default)s)")
    cluster.add_argument("--message-bytes", type=int, default=1500,
                         help="tenant message size (default: %(default)s)")
    cluster.add_argument("--protocol", choices=PROTOCOL_CHOICES,
                         default="udp")
    cluster.add_argument("--process-hosts", action="store_true",
                         help="one worker process per host (byte-"
                              "identical to the default in-process mode)")
    cluster.add_argument("--seed", type=int, default=42,
                         help="base seed; each host derives its own "
                              "stream from it")
    cluster.add_argument("--sim-mode", choices=("exact", "fluid"),
                         default="exact", dest="sim_mode",
                         help="per-host datapath mode: 'fluid' collapses "
                              "eligible uplink TX and inbound RX flows "
                              "within each barrier window (byte-identical "
                              "results — see docs/performance.md)")

    campaign = [_campaign_parent()]
    figures = commands.add_parser(
        "figures", parents=campaign,
        help="regenerate the paper figures' series as JSON artifacts")
    figures.add_argument("--only", action="append", default=None,
                         metavar="FIGN",
                         help="figure selection, e.g. --only fig15 or "
                              "--only fig08,fig09 (repeatable; "
                              "default: all)")
    figures.add_argument("--out-dir", default="figures", metavar="DIR",
                         help="artifact directory (default: %(default)s)")
    figures.add_argument("--quick", action="store_true",
                         help="smoke-scale campaign: same code paths, "
                              "NOT the paper's numbers")

    sweep = commands.add_parser(
        "sweep", parents=campaign,
        help="run a declarative sweep spec (base/grid/list JSON)")
    sweep.add_argument("spec", metavar="SPEC.json", nargs="?", default=None,
                       help="sweep spec file, or '-' for stdin "
                            "(omit when resuming with --resume)")
    sweep.add_argument("--out", default=None, metavar="FILE",
                       help="write expanded scenarios + results as JSON")
    sweep.add_argument("--metrics-dir", default=None, metavar="DIR",
                       help="enable telemetry in every executed job and "
                            "write one <key>.metrics.json per job")

    report = commands.add_parser(
        "report",
        help="render a campaign journal as self-contained static HTML")
    report.add_argument("journal", metavar="JOURNAL.jsonl",
                        help="the campaign.jsonl a --journal/--dashboard "
                             "campaign wrote")
    report.add_argument("--out", default=None, metavar="FILE",
                        help="output HTML path (default: the journal "
                             "path with .html)")
    report.add_argument("--baseline", default=None,
                        metavar="JOURNAL.jsonl",
                        help="a prior campaign journal to diff against "
                             "(per-cell throughput/runtime deltas)")
    report.add_argument("--check", action="store_true",
                        help="strictly validate the journal's schema "
                             "and exit without writing HTML")

    faults = commands.add_parser(
        "faults", parents=campaign,
        help="show the fault-injection vocabulary, validate a plan, "
             "or run a seeded fault-fuzzing campaign")
    faults.add_argument("--check", metavar="PLAN.json", default=None,
                        help="validate a JSON fault plan (a list of "
                             "spec dicts; '-' reads stdin) and print "
                             "its normalized form")
    faults.add_argument("--fuzz", type=int, default=None, metavar="N",
                        help="run N random faulted scenarios (single-host "
                             "and cluster mixes) under the supervised "
                             "campaign engine with the invariant auditor "
                             "armed — a conservation-violation hunter")
    faults.add_argument("--seed", type=int, default=42,
                        help="fuzz generation seed; (N, seed) fully "
                             "determines the scenario list "
                             "(default: %(default)s)")

    bench = commands.add_parser(
        "bench",
        help="run the tracked perf benchmarks; emit BENCH_<n>.json")
    bench.add_argument("--quick", action="store_true",
                       help="smaller event counts and scenarios "
                            "(CI perf-smoke scale)")
    bench.add_argument("--label", default="",
                       help="free-form label recorded in the document")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="output path (default: the next free "
                            "BENCH_<n>.json in the current directory)")
    bench.add_argument("--check", default=None, metavar="BASELINE.json",
                       help="compare events/sec against a committed "
                            "baseline; exit 1 on regression beyond "
                            "--tolerance")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       metavar="FRAC",
                       help="allowed events/sec regression vs the "
                            "baseline (default: %(default)s)")
    return parser


def _add_guest_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--vms", type=int, default=10,
                     help="number of guests")
    sub.add_argument("--ports", type=int, default=10,
                     help="1 GbE ports in the testbed")
    sub.add_argument("--kind", choices=KIND_CHOICES, default="hvm")
    sub.add_argument("--kernel", choices=KERNEL_CHOICES, default="2.6.28")
    sub.add_argument("--protocol", choices=PROTOCOL_CHOICES, default="udp")
    sub.add_argument("--no-opts", action="store_true",
                     help="disable all §5 optimizations")
    sub.add_argument("--itr", default="aic",
                     help="coalescing policy: 'aic', 'dynamic', or a "
                          "fixed frequency in Hz (e.g. 2000)")
    sub.add_argument("--seed", type=int, default=42,
                     help="testbed random-stream seed")


def parse_policy_spec(spec: str) -> Dict[str, object]:
    """``--itr`` shorthand -> the declarative policy spec dict."""
    if spec == "aic":
        return {"kind": "aic"}
    if spec == "dynamic":
        return {"kind": "dynamic_itr"}
    try:
        return {"kind": "fixed_itr", "hz": float(spec)}
    except ValueError:
        raise SystemExit(f"unknown ITR policy {spec!r}: use 'aic', "
                         "'dynamic', or a frequency in Hz")


def parse_policy(spec: str) -> CoalescingPolicy:
    """``--itr`` shorthand -> a live policy object."""
    return policy_from_spec(parse_policy_spec(spec))


def parse_fault_spec(text: str) -> Dict[str, object]:
    """``--fault`` shorthand -> a normalized fault spec dict.

    Format: ``kind`` or ``kind:key=value,key=value``.  Values parse as
    JSON when they can (numbers, null) and fall back to strings.
    """
    from repro.faults import FaultSpecError, validate_spec

    kind, _, rest = text.partition(":")
    spec: Dict[str, object] = {"kind": kind.strip()}
    if rest.strip():
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise SystemExit(f"bad --fault field {pair!r} in "
                                 f"{text!r}: expected key=value")
            try:
                spec[key.strip()] = json.loads(value)
            except ValueError:
                spec[key.strip()] = value.strip()
    try:
        return validate_spec(spec)
    except FaultSpecError as exc:
        raise SystemExit(f"bad --fault {text!r}: {exc}")


def print_result(result: RunResult) -> None:
    from repro.core.report import format_run_result
    print(format_run_result(result))


def _wants_telemetry(args) -> bool:
    return bool(args.metrics_json or args.trace_out)


def _export_observability(args, telemetry, profiler, elapsed: float) -> None:
    """Write --metrics-json / --trace-out and print --profile output."""
    if args.metrics_json and telemetry is not None:
        telemetry.write_metrics(args.metrics_json, elapsed)
        print(f"metrics    : wrote {args.metrics_json}", file=sys.stderr)
    if args.trace_out and telemetry is not None:
        fmt = telemetry.write_trace(args.trace_out)
        print(f"trace      : wrote {args.trace_out} ({fmt})",
              file=sys.stderr)
    if getattr(args, "profile", False) and profiler is not None:
        print(profiler.table(), file=sys.stderr)


def _scenario_for(args) -> Scenario:
    """The Scenario a single-experiment subcommand describes."""
    faults = [parse_fault_spec(text) for text in args.fault] or None
    common = dict(warmup=args.warmup, duration=args.duration,
                  faults=faults)
    if args.command == "sriov":
        return Scenario(
            mode="native" if args.native else "sriov",
            vm_count=args.vms, kind=args.kind, kernel=args.kernel,
            protocol=args.protocol, ports=args.ports,
            opts={} if args.no_opts else None,
            policy=parse_policy_spec(args.itr), seed=args.seed,
            sim_mode=args.sim_mode, **common)
    if args.command == "pv":
        return Scenario(mode="pv", vm_count=args.vms, kind=args.kind,
                        single_thread_backend=args.single_thread,
                        ports=args.ports, **common)
    if args.command == "vmdq":
        return Scenario(mode="vmdq", vm_count=args.vms, kind="pvm",
                        **common)
    if args.command == "intervm":
        # PV inter-VM rides dom0's copy path; the paper measures it
        # with PVM guests (HVM adds the interrupt-conversion layer).
        return Scenario(mode="intervm", variant=args.mode,
                        kind="pvm" if args.mode == "pv" else "hvm",
                        message_bytes=args.message_bytes,
                        sim_mode=args.sim_mode, **common)
    if args.command == "migrate":
        return Scenario(mode="migrate", variant=args.mode,
                        start_at=args.start_at, faults=faults)
    if args.command == "cluster":
        # Ring traffic matrix: every guest j on host i streams to
        # guest j on host i+1, so each uplink carries symmetric load.
        hosts = [{"name": f"h{i}", "vm_count": args.vms_per_host,
                  "ports": args.vms_per_host}
                 for i in range(args.hosts)]
        flows = [{"src_host": f"h{i}",
                  "dst_host": f"h{(i + 1) % args.hosts}",
                  "src_vm": j, "dst_vm": j,
                  "offered_bps": args.offered_mbps * 1e6,
                  "message_bytes": args.message_bytes,
                  "protocol": args.protocol}
                 for i in range(args.hosts)
                 for j in range(args.vms_per_host)]
        return Scenario(mode="cluster", hosts=hosts, flows=flows,
                        fabric={"uplink_gbps": args.uplink_gbps,
                                "latency_s": args.latency_us * 1e-6},
                        seed=args.seed, sim_mode=args.sim_mode, **common)
    raise AssertionError(f"no scenario for {args.command!r}")


def _print_migration(result: RunResult, variant: str) -> None:
    migration = result.extras["migration"]
    print(f"migration events ({variant}):")
    for time, name in migration["events"]:
        print(f"  {time:7.2f}s  {name}")
    print(f"downtime: {migration['downtime']:.2f}s "
          f"(blackout {migration['blackout_start']:.2f}s -> "
          f"{migration['blackout_end']:.2f}s)")


def run_cli(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _run_figures(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "faults":
        return _run_faults(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "cluster":
        return _run_cluster(args)
    result = run(_scenario_for(args), telemetry=_wants_telemetry(args),
                 profile=args.profile, audit=not args.no_audit,
                 audit_interval=args.audit_interval)
    if args.command == "migrate":
        _print_migration(result, args.mode)
    else:
        print_result(result)
        _print_fluid(result)
    _export_observability(args, result.telemetry, result.profiler,
                          result.duration)
    return 0


def _print_fluid(result) -> None:
    """One stderr line of fast-path diagnostics for --sim-mode=fluid:
    how much of the run collapsed, and which eligibility gate refused
    the flows that stayed exact."""
    fluid = getattr(result, "fluid", None)
    if fluid is None:
        return
    collapsed = fluid["collapsed_events"]
    total = collapsed + fluid["events_executed"]
    frac = collapsed / total if total else 0.0
    line = (f"fluid      : {collapsed} of {total} events collapsed "
            f"({frac:.1%}) across {fluid['flows']} flow(s)")
    rejections = fluid.get("rejections") or {}
    if rejections:
        gates = ", ".join(f"{gate}={count}" for gate, count
                          in sorted(rejections.items()))
        line += f"; rejected: {gates}"
    print(line, file=sys.stderr)


def _run_cluster(args) -> int:
    """The ``cluster`` subcommand: one multi-host scenario, with a
    per-host breakdown and fabric counters after the aggregate."""
    from repro.core.report import format_table
    if args.trace_out:
        raise SystemExit("--trace-out is single-host only: per-host "
                         "event traces are not merged (use "
                         "--metrics-json for cluster observability)")
    if args.profile:
        raise SystemExit("--profile is single-host only: each cluster "
                         "host runs its own engine")
    if args.audit_interval is not None:
        raise SystemExit("--audit-interval is single-host only; "
                         "cluster hosts audit at run end (drop the "
                         "flag or use --no-audit)")
    if args.metrics_json and args.process_hosts:
        raise SystemExit("--metrics-json needs the in-process mode: "
                         "drop --process-hosts (results are "
                         "byte-identical either way)")
    result = run(_scenario_for(args), telemetry=bool(args.metrics_json),
                 audit=not args.no_audit,
                 parallel_hosts=args.process_hosts)
    print_result(result)
    _print_fluid(result)
    cluster = result.extras["cluster"]
    # The events column counts simulated work, executed plus collapsed
    # (the bench harness's convention) — so a fluid run's stdout stays
    # byte-identical to exact; the collapse split is the stderr line.
    collapsed_by_host = (getattr(result, "fluid", None)
                         or {}).get("collapsed_by_host") or {}
    rows = [[name, host["vm_count"], host["throughput_bps"] / 1e9,
             sum(host["cpu"].values()), host["dropped_packets"],
             host["uplink_tx_frames"],
             host["events_executed"] + collapsed_by_host.get(name, 0)]
            for name, host in sorted(cluster["hosts"].items())]
    print(format_table("per-host", ["host", "VMs", "Gbps", "CPU%",
                                    "drops", "uplink TX", "events"],
                       rows))
    fabric = cluster["fabric"]
    print(f"fabric     : {fabric['uplink_gbps']:g} Gbps uplinks, "
          f"{fabric['latency_s'] * 1e6:g} us latency; "
          f"forwarded {fabric['forwarded']} frames "
          f"({fabric['forwarded_bytes']} B), dropped "
          f"{fabric['dropped']}, unknown-dst {fabric['unknown_dst']}; "
          f"{cluster['sync_windows']} sync windows "
          f"({'process' if args.process_hosts else 'in-process'} hosts)",
          file=sys.stderr)
    if args.metrics_json and result.telemetry is not None:
        result.telemetry.write_metrics(args.metrics_json, result.duration)
        print(f"metrics    : wrote {args.metrics_json}", file=sys.stderr)
    return 0


def _cache_for(args):
    from repro.sweep.cache import ResultCache
    return None if args.no_cache else ResultCache(args.cache_dir)


def _supervise_for(args):
    from repro.sweep.supervise import SuperviseConfig
    return SuperviseConfig(task_timeout=args.task_timeout,
                           max_retries=args.max_retries)


def _load_resume(args, kind: str):
    """The checkpoint behind ``--resume``, validated for this command."""
    from repro.sweep.checkpoint import CampaignCheckpoint, CheckpointError
    if args.checkpoint:
        raise SystemExit("--resume already names the checkpoint file; "
                         "drop --checkpoint")
    try:
        checkpoint = CampaignCheckpoint.load(args.resume)
    except CheckpointError as exc:
        raise SystemExit(str(exc))
    if checkpoint.command.get("kind") != kind:
        raise SystemExit(
            f"checkpoint {args.resume} records a "
            f"'{checkpoint.command.get('kind')}' campaign; resume it "
            f"with 'repro {checkpoint.command.get('kind')}'")
    return checkpoint


def _hub_for(args):
    """The TelemetryHub behind --dashboard/--journal (None without)."""
    if not (args.dashboard or args.journal):
        return None
    from pathlib import Path

    from repro.obs.campaign import TelemetryHub
    from repro.obs.campaign.dashboard import Dashboard
    journal = args.journal
    anchor = args.resume or args.checkpoint
    if journal is None and anchor:
        journal = str(Path(anchor).resolve().parent / "campaign.jsonl")
    spool = None
    if journal is None:
        # Dashboard without a journal: worker telemetry still streams,
        # through a throwaway spool the hub removes on finalize.
        import tempfile
        spool = tempfile.mkdtemp(prefix="repro-spool-")
    dashboard = Dashboard() if args.dashboard else None
    if journal:
        _say(f"journal    : {journal}")
    return TelemetryHub(journal_path=journal, spool_dir=spool,
                        dashboard=dashboard)


def _finish_campaign(stats, hub=None) -> int:
    """The shared summary/exit-code tail of figures and sweep."""
    if hub is not None:
        hub.finalize(stats)
        if hub.journal_errors:
            print(f"warning: {hub.journal_errors} journal write "
                  "error(s); the campaign journal is incomplete",
                  file=sys.stderr)
    print(stats.summary())
    print(stats.task_summary())
    if stats.failures:
        print(f"error: {stats.failures} task(s) did not produce a "
              "result (see task summary)", file=sys.stderr)
        return 1
    return 0


def _say(message: str) -> None:
    print(message, file=sys.stderr)


def _run_figures(args) -> int:
    from repro.core.report import format_table
    from repro.sweep.checkpoint import CampaignCheckpoint
    from repro.sweep.figures import generate_figures, resolve_names

    quick = args.quick
    checkpoint = None
    if args.resume:
        if args.only:
            raise SystemExit("--resume replays the checkpoint's figure "
                             "selection; drop --only")
        checkpoint = _load_resume(args, "figures")
        names = list(checkpoint.command.get("names") or [])
        quick = bool(checkpoint.command.get("quick"))
        _say(f"resuming {len(checkpoint.completed)}/{checkpoint.total} "
             f"completed tasks from {args.resume}")
    else:
        only: Optional[List[str]] = None
        if args.only:
            only = [name for chunk in args.only
                    for name in chunk.split(",") if name]
        try:
            names = resolve_names(only)
        except ValueError as exc:
            raise SystemExit(str(exc))
        if args.checkpoint:
            checkpoint = CampaignCheckpoint(
                args.checkpoint,
                {"kind": "figures", "names": names, "quick": bool(quick)})
    hub = _hub_for(args)
    artifacts, stats = generate_figures(
        names, quick=quick, jobs=args.jobs, cache=_cache_for(args),
        out_dir=args.out_dir, progress=_say,
        supervise=_supervise_for(args), checkpoint=checkpoint,
        audit=not args.no_audit, hub=hub)
    for name in names:
        artifact = artifacts[name]
        print(format_table(f"{name}: {artifact['title']}",
                           artifact["columns"], artifact["rows"]))
    print(f"\nwrote {len(names)} artifacts to {args.out_dir}/",
          file=sys.stderr)
    return _finish_campaign(stats, hub)


def _run_bench(args) -> int:
    from pathlib import Path

    from repro.bench import (compare, load_bench, next_bench_path,
                             run_bench, write_bench)

    doc = run_bench(quick=args.quick, label=args.label, progress=_say)
    out = Path(args.out) if args.out else next_bench_path(Path.cwd())
    write_bench(doc, out)
    print(f"wrote {out}", file=sys.stderr)
    if args.check is None:
        return 0
    baseline = load_bench(Path(args.check))
    regressions, lines = compare(baseline, doc, tolerance=args.tolerance)
    print(f"baseline: {args.check} ({baseline.get('label') or 'unlabeled'})")
    for line in lines:
        print(f"  {line}")
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        return 1
    print(f"no events/sec regression beyond {args.tolerance:.0%}")
    return 0


def _run_report(args) -> int:
    from repro.obs.campaign.report import (JournalError, load_journal,
                                           write_report)

    try:
        if args.check:
            records = load_journal(args.journal, strict=True)
            print(f"ok: {len(records)} journal records")
            return 0
        out = write_report(args.journal, args.out, args.baseline)
    except JournalError as exc:
        raise SystemExit(str(exc))
    print(f"report     : wrote {out}", file=sys.stderr)
    return 0


def _run_faults(args) -> int:
    from repro.faults import FAULT_FIELDS, FaultPlan, FaultSpecError
    from repro.faults.plan import REQUIRED

    if args.fuzz is not None or args.resume:
        return _run_fault_fuzz(args)
    if args.check is not None:
        if args.check == "-":
            document = json.load(sys.stdin)
        else:
            with open(args.check) as handle:
                document = json.load(handle)
        if not isinstance(document, list):
            raise SystemExit("a fault plan is a JSON *list* of spec "
                             f"dicts, not {type(document).__name__}")
        try:
            plan = FaultPlan.from_specs(document)
        except FaultSpecError as exc:
            raise SystemExit(f"invalid fault plan: {exc}")
        print(json.dumps(plan.to_list(), indent=1, sort_keys=True))
        print(f"ok: {len(plan)} fault(s)", file=sys.stderr)
        return 0
    print("fault kinds (see docs/faults.md):")
    for kind, fields in FAULT_FIELDS.items():
        parts = [f"{name}=<required>" if default is REQUIRED
                 else f"{name}={default!r}"
                 for name, (default, _) in fields.items()]
        print(f"  {kind:18s} {', '.join(parts)}")
    print("\nusage: --fault 'link_flap:at=2.0,duration=0.5,port=0' "
          "(repeatable),\nor a JSON list in a Scenario's 'faults' field "
          "(validate with --check).\nFuzz mode: repro faults --fuzz N "
          "[--seed S] hunts conservation violations.")
    return 0


def _run_fault_fuzz(args) -> int:
    from repro.faults.fuzz import generate_fuzz_scenarios, violation_outcomes
    from repro.sweep.checkpoint import CampaignCheckpoint
    from repro.sweep.runner import run_sweep

    checkpoint = None
    if args.resume:
        if args.fuzz is not None:
            raise SystemExit("--resume replays the checkpoint's "
                             "(count, seed); drop --fuzz")
        checkpoint = _load_resume(args, "faults-fuzz")
        count = int(checkpoint.command["count"])
        seed = int(checkpoint.command["seed"])
        _say(f"resuming {len(checkpoint.completed)}/{checkpoint.total} "
             f"completed tasks from {args.resume}")
    else:
        count, seed = args.fuzz, args.seed
        if args.checkpoint:
            checkpoint = CampaignCheckpoint(
                args.checkpoint,
                {"kind": "faults-fuzz", "count": count, "seed": seed})
    try:
        scenarios = generate_fuzz_scenarios(count, seed)
    except ValueError as exc:
        raise SystemExit(str(exc))
    _say(f"fuzzing    : {count} faulted scenario(s), seed {seed} "
         "(auditor armed)")
    hub = _hub_for(args)
    outcomes, stats = run_sweep(
        scenarios, jobs=args.jobs, cache=_cache_for(args), progress=_say,
        supervise=_supervise_for(args), checkpoint=checkpoint,
        audit=not args.no_audit, hub=hub)
    code = _finish_campaign(stats, hub)
    violations = violation_outcomes(outcomes)
    if violations:
        print(f"FUZZ: {len(violations)} invariant violation(s) found "
              f"(seed {seed}):", file=sys.stderr)
        for outcome in violations:
            scenario = outcome.scenario
            print(f"  [{outcome.index}] key={outcome.key[:16]} "
                  f"seed={scenario.seed} mode={scenario.mode}: "
                  f"{outcome.task.error}", file=sys.stderr)
            replay = json.dumps(scenario.to_dict(), sort_keys=True)
            print(f"    replay: {replay}", file=sys.stderr)
        return 1
    if code == 0:
        print(f"fuzz clean: {count} scenario(s), zero invariant "
              "violations")
    return code


def _run_sweep(args) -> int:
    from repro.core.report import format_table
    from repro.sweep.checkpoint import CampaignCheckpoint
    from repro.sweep.runner import run_sweep
    from repro.sweep.spec import SweepSpec

    checkpoint = None
    if args.resume:
        if args.spec is not None:
            raise SystemExit("--resume replays the checkpoint's spec; "
                             "drop the SPEC.json argument")
        checkpoint = _load_resume(args, "sweep")
        document = checkpoint.command.get("spec")
        _say(f"resuming {len(checkpoint.completed)}/{checkpoint.total} "
             f"completed tasks from {args.resume}")
    elif args.spec is None:
        raise SystemExit("a sweep needs SPEC.json (or --resume FILE)")
    else:
        try:
            if args.spec == "-":
                document = json.load(sys.stdin)
            else:
                with open(args.spec) as handle:
                    document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read sweep spec {args.spec}: {exc}")
    try:
        spec = SweepSpec.from_dict(document)
        scenarios = spec.expand()
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"bad sweep spec: {exc}")
    if checkpoint is None and args.checkpoint:
        checkpoint = CampaignCheckpoint(args.checkpoint,
                                        {"kind": "sweep",
                                         "spec": document})
    hub = _hub_for(args)
    outcomes, stats = run_sweep(scenarios, jobs=args.jobs,
                                cache=_cache_for(args),
                                metrics_dir=args.metrics_dir,
                                progress=_say,
                                supervise=_supervise_for(args),
                                checkpoint=checkpoint,
                                audit=not args.no_audit,
                                hub=hub)
    rows = []
    for o in outcomes:
        if o.result is not None:
            rows.append([o.index, o.scenario.mode, o.key[:8],
                         "hit" if o.cached else "run",
                         o.result.throughput_gbps,
                         o.result.total_cpu_percent,
                         o.result.loss_rate * 100])
        else:
            status = o.task.status if o.task else "missing"
            rows.append([o.index, o.scenario.mode, o.key[:8],
                         status.upper(), "-", "-", "-"])
    print(format_table(f"sweep: {len(outcomes)} scenarios",
                       ["#", "mode", "key", "cache", "Gbps", "CPU%",
                        "loss%"], rows))
    if args.out:
        payload = {
            "schema": "repro-sweep-results/1",
            "results": [{"scenario": o.scenario.to_dict(), "key": o.key,
                         "cached": o.cached,
                         "result": o.result.to_dict()
                         if o.result is not None else None}
                        for o in outcomes],
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"results    : wrote {args.out}", file=sys.stderr)
    return _finish_campaign(stats, hub)


def main() -> None:  # pragma: no cover - thin entry point
    sys.exit(run_cli())
