"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro sriov --vms 10 --kind hvm
    python -m repro sriov --vms 7 --ports 1 --kernel 2.6.18 --no-opts
    python -m repro pv --vms 20 --single-thread
    python -m repro vmdq --vms 40
    python -m repro intervm --mode sriov --message-bytes 4000
    python -m repro migrate --mode dnis

Each subcommand builds the §6.1 testbed, runs the measurement loop, and
prints the same quantities the paper plots.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.experiment import ExperimentRunner, RunResult
from repro.core.optimizations import OptimizationConfig
from repro.drivers.coalescing import (
    AdaptiveCoalescing,
    CoalescingPolicy,
    DynamicItr,
    FixedItr,
)
from repro.net.packet import Protocol
from repro.vmm.domain import DomainKind, GuestKernel

KIND_CHOICES = {"hvm": DomainKind.HVM, "pvm": DomainKind.PVM}
KERNEL_CHOICES = {"2.6.18": GuestKernel.LINUX_2_6_18,
                  "2.6.28": GuestKernel.LINUX_2_6_28}
PROTOCOL_CHOICES = {"udp": Protocol.UDP, "tcp": Protocol.TCP}


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared observability flags, valid after every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    timing = parent.add_argument_group("measurement window")
    # SUPPRESS: only set when given after the subcommand, so the
    # top-level --warmup/--duration defaults still apply otherwise.
    timing.add_argument("--warmup", type=float, default=argparse.SUPPRESS,
                        help="simulated warmup seconds before measuring")
    timing.add_argument("--duration", type=float, default=argparse.SUPPRESS,
                        help="simulated measurement window seconds")
    group = parent.add_argument_group("observability")
    group.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="write the deterministic metrics snapshot "
                            "(registry + cycle ledger + exit breakdown) "
                            "as JSON")
    group.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the event trace; .jsonl gets JSONL, "
                            "anything else Chrome trace-event JSON "
                            "(chrome://tracing / Perfetto)")
    group.add_argument("--profile", action="store_true",
                       help="print a host-side wall-clock profile of "
                            "simulator callbacks after the run")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'High Performance Network "
                    "Virtualization with SR-IOV' (HPCA 2010 / JPDC 2012)",
    )
    parser.add_argument("--warmup", type=float, default=1.2,
                        help="simulated warmup seconds before measuring")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="simulated measurement window seconds")
    commands = parser.add_subparsers(dest="command", required=True)
    obs = [_telemetry_parent()]

    sriov = commands.add_parser("sriov", help="SR-IOV receive experiment",
                                parents=obs)
    _add_guest_args(sriov)
    sriov.add_argument("--native", action="store_true",
                       help="run the drivers on bare metal (Fig. 12's "
                            "native baseline)")

    pv = commands.add_parser("pv", help="PV split-driver experiment",
                             parents=obs)
    pv.add_argument("--vms", type=int, default=10)
    pv.add_argument("--ports", type=int, default=10)
    pv.add_argument("--kind", choices=KIND_CHOICES, default="hvm")
    pv.add_argument("--single-thread", action="store_true",
                    help="use the stock single-threaded netback")

    vmdq = commands.add_parser("vmdq", help="VMDq experiment (Fig. 19)",
                               parents=obs)
    vmdq.add_argument("--vms", type=int, default=10)

    intervm = commands.add_parser("intervm",
                                  help="inter-VM experiment (Figs. 13-14)",
                                  parents=obs)
    intervm.add_argument("--mode", choices=["sriov", "pv"], default="sriov")
    intervm.add_argument("--message-bytes", type=int, default=1500)

    migrate = commands.add_parser("migrate",
                                  help="live migration (Figs. 20-21)",
                                  parents=obs)
    migrate.add_argument("--mode", choices=["pv", "dnis"], default="dnis")
    migrate.add_argument("--start-at", type=float, default=4.5)
    return parser


def _add_guest_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--vms", type=int, default=10,
                     help="number of guests")
    sub.add_argument("--ports", type=int, default=10,
                     help="1 GbE ports in the testbed")
    sub.add_argument("--kind", choices=KIND_CHOICES, default="hvm")
    sub.add_argument("--kernel", choices=KERNEL_CHOICES, default="2.6.28")
    sub.add_argument("--protocol", choices=PROTOCOL_CHOICES, default="udp")
    sub.add_argument("--no-opts", action="store_true",
                     help="disable all §5 optimizations")
    sub.add_argument("--itr", default="aic",
                     help="coalescing policy: 'aic', 'dynamic', or a "
                          "fixed frequency in Hz (e.g. 2000)")


def parse_policy(spec: str) -> CoalescingPolicy:
    if spec == "aic":
        return AdaptiveCoalescing()
    if spec == "dynamic":
        return DynamicItr()
    try:
        return FixedItr(float(spec))
    except ValueError:
        raise SystemExit(f"unknown ITR policy {spec!r}: use 'aic', "
                         "'dynamic', or a frequency in Hz")


def print_result(result: RunResult) -> None:
    from repro.core.report import format_run_result
    print(format_run_result(result))


def _wants_telemetry(args) -> bool:
    return bool(args.metrics_json or args.trace_out)


def _export_observability(args, telemetry, profiler, elapsed: float) -> None:
    """Write --metrics-json / --trace-out and print --profile output."""
    if args.metrics_json and telemetry is not None:
        telemetry.write_metrics(args.metrics_json, elapsed)
        print(f"metrics    : wrote {args.metrics_json}", file=sys.stderr)
    if args.trace_out and telemetry is not None:
        fmt = telemetry.write_trace(args.trace_out)
        print(f"trace      : wrote {args.trace_out} ({fmt})",
              file=sys.stderr)
    if getattr(args, "profile", False) and profiler is not None:
        print(profiler.table(), file=sys.stderr)


def run_cli(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    runner = ExperimentRunner(warmup=args.warmup, duration=args.duration,
                              telemetry=_wants_telemetry(args),
                              profile=args.profile)
    if args.command == "sriov":
        opts = (OptimizationConfig.none() if args.no_opts
                else OptimizationConfig.all())
        result = runner.run_sriov(
            args.vms, kind=KIND_CHOICES[args.kind],
            kernel=KERNEL_CHOICES[args.kernel], opts=opts,
            policy_factory=lambda: parse_policy(args.itr),
            protocol=PROTOCOL_CHOICES[args.protocol],
            ports=args.ports, native=args.native)
    elif args.command == "pv":
        result = runner.run_pv(args.vms, kind=KIND_CHOICES[args.kind],
                               single_thread_backend=args.single_thread,
                               ports=args.ports)
    elif args.command == "vmdq":
        result = runner.run_vmdq(args.vms)
    elif args.command == "intervm":
        if args.mode == "sriov":
            result = runner.run_intervm_sriov(args.message_bytes)
        else:
            result = runner.run_intervm_pv(args.message_bytes)
    elif args.command == "migrate":
        return _run_migration(args)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    print_result(result)
    _export_observability(args, result.telemetry, result.profiler,
                          result.duration)
    return 0


def _run_migration(args) -> int:
    from repro.core.testbed import Testbed, TestbedConfig
    from repro.drivers.netfront import Netfront
    from repro.migration import DnisGuest, MigrationManager, PrecopyConfig
    from repro.net.mac import MacAddress
    from repro.net.netperf import NetperfStream
    from repro.net.packet import udp_goodput_bps

    bed = Testbed(TestbedConfig(ports=1, telemetry=_wants_telemetry(args),
                                profile=args.profile))
    manager_config = PrecopyConfig()
    line = udp_goodput_bps(1e9)
    if args.mode == "pv":
        guest = bed.add_pv_guest(DomainKind.HVM)
        bed.attach_client_to_pv(guest, line).start()
        manager = MigrationManager(bed.platform, bed.hotplug, manager_config)
        _, report = manager.migrate_pv(guest.netfront, args.start_at)
    else:
        sriov = bed.add_sriov_guest(DomainKind.HVM)
        netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
        bed.netback.connect(netfront)
        dnis = DnisGuest(bed.platform, sriov.domain, sriov.driver, netfront,
                         bed.hotplug)
        NetperfStream(bed.sim, dnis.wire_sink,
                      MacAddress.parse("02:00:00:00:99:99"), sriov.vf.mac,
                      line, name="client").start()
        manager = MigrationManager(bed.platform, bed.hotplug,
                                   PrecopyConfig(dirty_ratio=0.15))
        _, report = manager.migrate_dnis(dnis, args.start_at)
    bed.sim.run(until=args.start_at + manager.model.total_time + 3.0)
    print(f"migration events ({args.mode}):")
    for time, name in report.events:
        print(f"  {time:7.2f}s  {name}")
    print(f"downtime: {report.downtime:.2f}s "
          f"(blackout {report.blackout_start:.2f}s -> "
          f"{report.blackout_end:.2f}s)")
    _export_observability(args, bed.telemetry, bed.profiler, bed.sim.now)
    return 0


def main() -> None:  # pragma: no cover - thin entry point
    sys.exit(run_cli())
