"""repro: a register-level reproduction of "High Performance Network
Virtualization with SR-IOV" (Dong et al., HPCA 2010 / JPDC 2012).

The paper's artifact is a set of kernel drivers and Xen changes measured
on real 82576 silicon; this library rebuilds the entire stack as a
deterministic discrete-event simulation — PCIe + SR-IOV hardware models,
a Xen-style hypervisor with calibrated VM-exit costs, the VF/PF/PV/VMDq
drivers, the three §5 optimizations, and DNIS live migration — and
regenerates every figure of the paper's evaluation.

Quick start::

    from repro import ExperimentRunner, OptimizationConfig

    runner = ExperimentRunner()
    result = runner.run_sriov(vm_count=10, opts=OptimizationConfig.all())
    print(f"{result.throughput_gbps:.2f} Gbps at "
          f"{result.total_cpu_percent:.0f}% CPU")

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results per figure.
"""

from repro.core import (
    CostModel,
    ExperimentRunner,
    OptimizationConfig,
    RunResult,
    Testbed,
    TestbedConfig,
)
from repro.vmm import DomainKind, GuestKernel

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "DomainKind",
    "ExperimentRunner",
    "GuestKernel",
    "OptimizationConfig",
    "RunResult",
    "Testbed",
    "TestbedConfig",
    "__version__",
]
