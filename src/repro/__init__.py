"""repro: a register-level reproduction of "High Performance Network
Virtualization with SR-IOV" (Dong et al., HPCA 2010 / JPDC 2012).

The paper's artifact is a set of kernel drivers and Xen changes measured
on real 82576 silicon; this library rebuilds the entire stack as a
deterministic discrete-event simulation — PCIe + SR-IOV hardware models,
a Xen-style hypervisor with calibrated VM-exit costs, the VF/PF/PV/VMDq
drivers, the three §5 optimizations, and DNIS live migration — and
regenerates every figure of the paper's evaluation.

Quick start::

    from repro import Scenario, run

    result = run(Scenario(mode="sriov", vm_count=10))
    print(f"{result.throughput_gbps:.2f} Gbps at "
          f"{result.total_cpu_percent:.0f}% CPU")

Campaigns (sweeps over many scenarios, with a process pool and a
content-addressed result cache) live in :mod:`repro.sweep`; see
docs/campaigns.md.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results per figure.
"""

from repro.api import Scenario, run
from repro.core import (
    CostModel,
    ExperimentRunner,
    OptimizationConfig,
    RunResult,
    Testbed,
    TestbedConfig,
)
from repro.vmm import DomainKind, GuestKernel

__version__ = "1.1.0"

__all__ = [
    "CostModel",
    "DomainKind",
    "ExperimentRunner",
    "GuestKernel",
    "OptimizationConfig",
    "RunResult",
    "Scenario",
    "Testbed",
    "TestbedConfig",
    "__version__",
    "run",
]
