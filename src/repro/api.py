"""The declarative experiment API: one value type, one entrypoint.

Every experiment the paper's evaluation runs — and every point of every
figure — is a :class:`Scenario`: a frozen bundle of JSON-able fields
naming *what* to simulate, with no live objects inside.  :func:`run`
executes one.  Because a Scenario is plain data it round-trips through
``to_dict``/``from_dict``, pickles into the sweep engine's process
pool, hashes into the result cache's content key, and diffs cleanly in
a JSON sweep spec.

Quick start::

    from repro.api import Scenario, run

    result = run(Scenario(mode="sriov", vm_count=10,
                          policy={"kind": "fixed_itr", "hz": 2000}))
    print(f"{result.throughput_gbps:.2f} Gbps")

The older imperative surface (:class:`repro.core.experiment
.ExperimentRunner` and its ``run_*`` methods) remains the execution
layer underneath; this module is the stable, serializable face in
front of it.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.costs import CostModel
from repro.faults.plan import FaultPlan
from repro.core.experiment import (
    DEFAULT_DURATION,
    DEFAULT_WARMUP,
    ExperimentRunner,
    RunResult,
)
from repro.core.optimizations import OptimizationConfig
from repro.net.packet import Protocol
from repro.vmm.domain import DomainKind, GuestKernel

__all__ = [
    "MODES",
    "SCHEMA_VERSION",
    "VARIANTS",
    "RunResult",
    "Scenario",
    "run",
]

#: Experiment families (which measurement loop runs).
MODES = ("sriov", "sriov_tx", "native", "pv", "vmdq", "intervm", "migrate",
         "cluster")

#: The Scenario dict-schema version this build reads and writes.
#: Version 1 is the original single-host surface; version 2 added the
#: multi-host fields (``hosts``/``fabric``/``flows``).  Single-host
#: dicts are emitted *without* a version tag — they are identical under
#: both versions, and omitting it keeps their cache keys byte-identical
#: to every result ever cached.
SCHEMA_VERSION = 2

#: Modes that take a ``variant`` refinement, and its allowed values
#: (first entry is the default).
VARIANTS = {"intervm": ("sriov", "pv"), "migrate": ("dnis", "pv")}

_KINDS = {"hvm": DomainKind.HVM, "pvm": DomainKind.PVM}
_KERNELS = {k.value: k for k in GuestKernel}
_PROTOCOLS = {p.value: p for p in Protocol}


@dataclass(frozen=True)
class Scenario:
    """A complete, serializable description of one experiment run.

    Enum-like fields are stored as their string values (``kind="hvm"``,
    not ``DomainKind.HVM``) so ``to_dict()`` is the identity on every
    field and the dict form *is* the canonical form the sweep cache
    hashes.  ``policy`` and ``opts`` are plain dicts for the same
    reason — see :func:`repro.drivers.coalescing.policy_from_spec` for
    the policy spec vocabulary.
    """

    #: Which measurement loop: one of :data:`MODES`.
    mode: str = "sriov"
    #: Refinement for intervm ("sriov"/"pv") and migrate ("dnis"/"pv");
    #: must be omitted for every other mode (it is filled with the
    #: mode's default at construction).
    variant: Optional[str] = None
    vm_count: int = 10
    #: Guest flavour: "hvm" or "pvm".
    kind: str = "hvm"
    #: Guest kernel: "2.6.18" (masks MSI per interrupt) or "2.6.28".
    kernel: str = "2.6.28"
    #: SR-IOV NIC family: "82576" or "82599".
    nic: str = "82576"
    protocol: str = "udp"
    #: netperf message size for the inter-VM experiments.
    message_bytes: int = 1500
    ports: int = 10
    vfs_per_port: int = 7
    #: PV mode: use the stock single-threaded netback.
    single_thread_backend: bool = False
    #: intervm/sriov: transmitting side, "guest" or "dom0".
    sender: str = "guest"
    #: Offered load override (bps): per-VM for sriov/native, total for
    #: intervm.  None picks each experiment's calibrated default.
    offered_bps: Optional[float] = None
    #: Declarative coalescing-policy spec, e.g.
    #: ``{"kind": "fixed_itr", "hz": 2000}``; None picks the
    #: experiment's default policy.
    policy: Optional[Mapping] = None
    #: §5 optimization switches as a dict of
    #: :class:`~repro.core.optimizations.OptimizationConfig` fields;
    #: None means the experiment default (everything on).
    opts: Optional[Mapping] = None
    #: migrate: when the migration is requested (simulated seconds).
    start_at: float = 4.5
    #: Seed for the testbed's random streams.  Part of the cache key:
    #: sweeping it is how you get independent replicas of a scenario.
    seed: int = 42
    warmup: float = DEFAULT_WARMUP
    duration: float = DEFAULT_DURATION
    #: Simulation datapath: "exact" (per-packet events, the reference)
    #: or "fluid" (collapsed-window fast path, :mod:`repro.sim.fluid`).
    #: Fluid runs are gated on producing byte-identical throughput
    #: anchors; scenarios the fast path cannot prove equivalent fall
    #: back to exact wholesale.  Part of the cache key when "fluid";
    #: omitted from :meth:`to_dict` when "exact" so existing cache
    #: keys never move.
    sim_mode: str = "exact"
    #: Declarative fault-injection plan: a list of spec dicts (see
    #: :mod:`repro.faults` and docs/faults.md).  None or empty means
    #: no faults — and is *omitted* from :meth:`to_dict`, so fault-free
    #: scenarios hash to exactly the cache keys they always had.
    faults: Optional[Sequence[Mapping]] = None
    #: cluster mode: per-host placement, a list of
    #: :class:`repro.core.host.HostSpec` dicts.  Required for (and
    #: exclusive to) ``mode="cluster"``; omitted from :meth:`to_dict`
    #: when absent so single-host cache keys never move.
    hosts: Optional[Sequence[Mapping]] = None
    #: cluster mode: the ToR fabric, a
    #: :class:`repro.net.fabric.FabricSpec` dict (None = defaults).
    fabric: Optional[Mapping] = None
    #: cluster mode: the tenant traffic matrix, a list of
    #: :class:`repro.core.host.FlowSpec` dicts.
    flows: Optional[Sequence[Mapping]] = None
    #: Dict-schema version (see :data:`SCHEMA_VERSION`).  Accepted on
    #: input as 1 or 2 and normalized to the current version; emitted
    #: only for multi-host scenarios.
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if self.schema_version not in (1, SCHEMA_VERSION):
            raise ValueError(
                f"unsupported scenario schema_version "
                f"{self.schema_version!r}: this build reads versions 1 "
                f"and {SCHEMA_VERSION} (a newer repro wrote this dict?)")
        object.__setattr__(self, "schema_version", SCHEMA_VERSION)
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}: "
                             f"use one of {', '.join(MODES)}")
        allowed = VARIANTS.get(self.mode)
        if allowed is None:
            if self.variant is not None:
                raise ValueError(f"mode {self.mode!r} takes no variant")
        else:
            variant = self.variant if self.variant is not None else allowed[0]
            if variant not in allowed:
                raise ValueError(f"mode {self.mode!r} variant must be one "
                                 f"of {allowed}, not {variant!r}")
            object.__setattr__(self, "variant", variant)
        for fname, choices in [("kind", _KINDS), ("kernel", _KERNELS),
                               ("protocol", _PROTOCOLS)]:
            if getattr(self, fname) not in choices:
                raise ValueError(f"{fname} must be one of "
                                 f"{sorted(choices)}, not "
                                 f"{getattr(self, fname)!r}")
        if self.sender not in ("guest", "dom0"):
            raise ValueError(f"sender must be 'guest' or 'dom0', "
                             f"not {self.sender!r}")
        if self.sim_mode not in ("exact", "fluid"):
            raise ValueError(f"sim_mode must be 'exact' or 'fluid', "
                             f"not {self.sim_mode!r}")
        # Normalize the mapping fields to plain dicts so equality,
        # pickling and JSON hashing see one representation.
        for fname in ("policy", "opts"):
            value = getattr(self, fname)
            if value is not None:
                object.__setattr__(self, fname, dict(value))
        if self.opts is not None:
            # Fail at construction, not at run time in a pool worker.
            OptimizationConfig(**self.opts)
        # Normalize the fault plan: validated, defaults filled, empty
        # collapsed to None so "no faults" has one representation.
        if self.faults:
            plan = FaultPlan.from_specs(self.faults)
            object.__setattr__(self, "faults", plan.to_list())
        else:
            object.__setattr__(self, "faults", None)
        self._normalize_cluster_fields()

    def _normalize_cluster_fields(self) -> None:
        """Validate + canonicalize ``hosts``/``fabric``/``flows``.

        Like ``faults``, each is normalized through its spec dataclass
        (defaults filled, unknown keys rejected) and empty collapses to
        None, so every multi-host scenario has exactly one dict form.
        """
        from repro.core.host import FlowSpec, HostSpec
        from repro.faults.plan import CLUSTER_FAULT_KINDS
        from repro.net.fabric import FabricSpec
        if self.mode != "cluster":
            for fname in ("hosts", "fabric", "flows"):
                if getattr(self, fname):
                    raise ValueError(
                        f"{fname}= is a cluster-mode field; mode "
                        f"{self.mode!r} does not take it")
                object.__setattr__(self, fname, None)
            for fault in (self.faults or ()):
                if fault["kind"] in CLUSTER_FAULT_KINDS:
                    raise ValueError(
                        f"fault kind {fault['kind']!r} is cluster-scope: "
                        f"it needs mode='cluster' with hosts=")
                if fault.get("host") is not None:
                    raise ValueError(
                        f"fault host= targets a cluster host; mode "
                        f"{self.mode!r} has no hosts")
            return
        if not self.hosts:
            raise ValueError("mode='cluster' needs hosts=: a list of "
                             "host spec dicts, e.g. "
                             "[{'name': 'h0', 'vm_count': 2}, ...]")
        host_specs = [HostSpec.from_dict(entry, index)
                      for index, entry in enumerate(self.hosts)]
        names = [spec.name for spec in host_specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names: {sorted(names)}")
        self._validate_cluster_faults(host_specs)
        vm_counts = {spec.name: spec.vm_count for spec in host_specs}
        flow_specs = [FlowSpec.from_dict(entry)
                      for entry in (self.flows or ())]
        for flow in flow_specs:
            for role, host, vm in (("src", flow.src_host, flow.src_vm),
                                   ("dst", flow.dst_host, flow.dst_vm)):
                if host not in vm_counts:
                    raise ValueError(
                        f"flow {role}_host {host!r} is not a declared "
                        f"host (hosts: {sorted(vm_counts)})")
                if vm >= vm_counts[host]:
                    raise ValueError(
                        f"flow {role}_vm {vm} out of range: host "
                        f"{host!r} places {vm_counts[host]} VMs")
        object.__setattr__(self, "hosts",
                           [spec.to_dict() for spec in host_specs])
        object.__setattr__(self, "fabric",
                           FabricSpec.from_dict(self.fabric).to_dict())
        object.__setattr__(self, "flows",
                           [spec.to_dict() for spec in flow_specs]
                           if flow_specs else None)

    def _validate_cluster_faults(self, host_specs) -> None:
        """Cluster-mode fault checks that need the host list: every
        ``host=`` reference (and partition group member) must name a
        declared host, port indexes must exist, and single-host-only
        kinds are rejected.  Runs at construction so a bad plan fails
        here, not inside a sweep-pool worker."""
        if not self.faults:
            return
        names = {spec.name for spec in host_specs}
        ports_by_host = {spec.name: spec.ports for spec in host_specs}

        def check_host(kind, host):
            if host not in names:
                match = difflib.get_close_matches(str(host),
                                                  sorted(names), n=1)
                hint = (f" (did you mean {match[0]!r}?)" if match else "")
                raise ValueError(
                    f"fault {kind!r} targets host {host!r} but the "
                    f"scenario declares {sorted(names)}{hint}")

        for fault in self.faults:
            kind = fault["kind"]
            if kind == "migration_degrade":
                raise ValueError(
                    "migration_degrade targets the single-host "
                    "migration harness; cluster mode does not take it")
            if kind == "fabric_partition":
                seen = set()
                for group in fault["groups"]:
                    for host in group:
                        check_host(kind, host)
                        seen.add(host)
                continue
            host = fault.get("host")
            if host is None:
                raise ValueError(
                    f"cluster-mode fault {kind!r} needs host=<name> "
                    f"(one of {sorted(names)})")
            check_host(kind, host)
            port = fault.get("port")
            if port is not None and port >= ports_by_host[host]:
                raise ValueError(
                    f"fault {kind!r} targets port {port} but host "
                    f"{host!r} has {ports_by_host[host]} port(s)")

    def with_(self, **changes) -> "Scenario":
        """A copy with the given fields changed (sweep-axis helper)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """All fields, as the canonical JSON-able dict.

        Fields that postdate the result cache — ``faults``, the
        multi-host trio, and ``sim_mode`` — are omitted when
        empty/default, and the version tag only appears alongside
        multi-host fields: every single-host, fault-free, exact-mode
        scenario keeps the exact content key it hashed before those
        fields existed.
        """
        data = dataclasses.asdict(self)
        for fname in ("faults", "hosts", "fabric", "flows"):
            if not data.get(fname):
                del data[fname]
        if "hosts" not in data:
            del data["schema_version"]
        if data.get("sim_mode") == "exact":
            del data["sim_mode"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown keys are an error (a
        typo'd sweep axis must not silently no-op)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            hints = []
            for name in sorted(unknown):
                match = difflib.get_close_matches(name, known, n=1)
                hints.append(f"{name!r}" +
                             (f" (did you mean {match[0]!r}?)"
                              if match else ""))
            raise ValueError(
                f"unknown scenario fields: {', '.join(hints)} — valid "
                f"fields are {', '.join(sorted(known))}")
        return cls(**data)


def run(scenario: Scenario, *, costs: Optional[CostModel] = None,
        telemetry: bool = False, profile: bool = False,
        audit: bool = True,
        audit_interval: Optional[float] = None,
        observer=None,
        parallel_hosts: bool = False) -> RunResult:
    """Execute one scenario and return its :class:`RunResult`.

    ``costs`` overrides the calibrated :class:`CostModel`; it is the
    only run input outside the Scenario itself, which is why the sweep
    cache keys on exactly (scenario dict, cost-model dict, schema
    version).  ``telemetry``/``profile`` attach observers without
    changing the simulation (they never enter the cache key), and
    ``audit``/``audit_interval`` control the runtime invariant auditor
    (:mod:`repro.audit`) — also outside the key: the default
    end-of-run audit is observation-only and fault-free audited runs
    are byte-identical to unaudited ones.  ``observer`` is a
    testbed-construction hook called as ``observer(bed)`` (the
    campaign telemetry streamer attaches its heartbeat through it);
    like telemetry it must never touch the simulation.

    ``parallel_hosts`` applies to ``mode="cluster"`` only: it moves
    each host's engine into its own worker process.  It is an execution
    knob, not part of the scenario — serial and parallel runs return
    byte-identical results and share one cache key.
    """
    if scenario.mode == "cluster":
        from repro.cluster import run_cluster
        return run_cluster(scenario, costs=costs, telemetry=telemetry,
                           audit=audit, parallel_hosts=parallel_hosts)
    runner = ExperimentRunner(costs=costs, warmup=scenario.warmup,
                              duration=scenario.duration,
                              telemetry=telemetry, profile=profile,
                              seed=scenario.seed, faults=scenario.faults,
                              sim_mode=scenario.sim_mode,
                              audit=audit, audit_interval=audit_interval,
                              audit_context={"scenario": scenario.to_dict(),
                                             "seed": scenario.seed},
                              observer=observer)
    return _dispatch(runner, scenario)


def _dispatch(runner: ExperimentRunner, scenario: Scenario) -> RunResult:
    """Route a scenario to the runner method its mode selects.

    Split from :func:`run` so callers that need the runner afterwards
    (the perf-benchmark harness reads ``runner.last_bed``) can supply
    their own.
    """
    if scenario.mode == "cluster":
        from repro.cluster import run_cluster
        return run_cluster(scenario, costs=runner.costs,
                           telemetry=runner.telemetry, audit=runner.audit)
    kind = _KINDS[scenario.kind]
    opts = (OptimizationConfig(**scenario.opts)
            if scenario.opts is not None else None)
    if scenario.mode in ("sriov", "native"):
        return runner.run_sriov(
            scenario.vm_count, kind=kind,
            kernel=_KERNELS[scenario.kernel], opts=opts,
            policy=scenario.policy,
            protocol=_PROTOCOLS[scenario.protocol],
            ports=scenario.ports, vfs_per_port=scenario.vfs_per_port,
            native=scenario.mode == "native",
            offered_bps_per_vm=scenario.offered_bps, nic=scenario.nic)
    if scenario.mode == "sriov_tx":
        return runner.run_sriov_tx(scenario.vm_count, kind=kind,
                                   policy=scenario.policy,
                                   ports=scenario.ports)
    if scenario.mode == "pv":
        return runner.run_pv(
            scenario.vm_count, kind=kind,
            single_thread_backend=scenario.single_thread_backend,
            protocol=_PROTOCOLS[scenario.protocol], ports=scenario.ports)
    if scenario.mode == "vmdq":
        return runner.run_vmdq(scenario.vm_count, kind=kind)
    if scenario.mode == "intervm":
        if scenario.variant == "pv":
            return runner.run_intervm_pv(
                scenario.message_bytes,
                offered_bps=(scenario.offered_bps
                             if scenario.offered_bps is not None else 8e9),
                kind=kind)
        return runner.run_intervm_sriov(
            scenario.message_bytes,
            offered_bps=(scenario.offered_bps
                         if scenario.offered_bps is not None else 5e9),
            policy=scenario.policy, kind=kind, sender=scenario.sender)
    if scenario.mode == "migrate":
        return runner.run_migrate(scenario.variant, kind=kind,
                                  start_at=scenario.start_at)
    raise AssertionError(f"unhandled mode {scenario.mode!r}")
