"""Device models: the SR-IOV NIC, the VMDq NIC, and their internals.

* :mod:`repro.devices.mailbox` — the PF<->VF mailbox + doorbell channel
  (paper §4.2: how driver-to-driver communication avoids any
  VMM-specific interface).
* :mod:`repro.devices.l2switch` — the on-chip layer-2 switch that
  classifies by MAC/VLAN and loops inter-VF traffic back internally
  (paper §4.1, §6.3).
* :mod:`repro.devices.igb82576` — the Intel 82576 Gigabit port model:
  PF + up to 8 VFs, descriptor rings, MSI-X, interrupt throttling.
* :mod:`repro.devices.ixgbe82598` — the Intel 82598 10 GbE model with 8
  VMDq queue pairs (the Fig. 19 comparison).
"""

from repro.devices.igb82576 import Igb82576Port, VirtualFunction
from repro.devices.ixgbe82598 import Ixgbe82598Port, VmdqQueuePair
from repro.devices.ixgbe82599 import Ixgbe82599Port
from repro.devices.l2switch import L2Switch, SwitchTarget
from repro.devices.mailbox import Mailbox, MailboxError, MailboxMessage

__all__ = [
    "Igb82576Port",
    "Ixgbe82598Port",
    "Ixgbe82599Port",
    "L2Switch",
    "Mailbox",
    "MailboxError",
    "MailboxMessage",
    "SwitchTarget",
    "VirtualFunction",
    "VmdqQueuePair",
]
