"""The Intel 82598 10 GbE controller with VMDq.

The Fig. 19 comparison point.  VMDq (Virtual Machine Device Queues)
offloads *packet classification* to the NIC: each guest gets a hardware
queue pair and received packets land directly in per-guest queues.  But
unlike SR-IOV, the hypervisor/service domain still moves every packet
into the guest ("it still needs VMM intervention for memory protection
and address translation", §1) — so dom0 CPU stays on the critical path.

The 82598 "has only 8 queue pairs, and only 7 guests can get VMDq
support.  Once the VM# exceeds 7, the rest of the VMs share the network
with domain 0, as the conventional PV NIC driver does" (§6.6) — the
behaviour that makes VMDq throughput peak at 10 VMs and decay.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.buffers import PacketBuffer
from repro.net.mac import MacAddress
from repro.net.packet import Packet
from repro.sim.engine import Simulator

#: The 82598 exposes 8 RX/TX queue pairs.
TOTAL_QUEUE_PAIRS = 8
#: Queue 0 is the default/shared queue (dom0's own traffic plus any
#: guest that did not get a dedicated queue).
DEFAULT_QUEUE = 0

QUEUE_DEPTH = 512


class VmdqQueuePair:
    """One hardware queue pair and its interrupt."""

    def __init__(self, sim: Simulator, index: int,
                 notify: Callable[["VmdqQueuePair"], None]):
        self.sim = sim
        self.index = index
        self.rx = PacketBuffer(QUEUE_DEPTH, f"vmdq{index}.rx")
        self._notify = notify
        self.owner: Optional[int] = None  # guest id, None = unassigned
        self.interrupts = 0

    def receive(self, burst: List[Packet]) -> int:
        accepted = self.rx.push_burst(burst)
        if accepted:
            self.interrupts += 1
            self._notify(self)
        return accepted


class Ixgbe82598Port:
    """The 10 GbE VMDq port: MAC-classified queues, dom0-mediated."""

    LINE_RATE_BPS = 10e9

    def __init__(self, sim: Simulator, name: str = "ixgbe0"):
        self.sim = sim
        self.name = name
        #: dom0's per-queue interrupt handler (netback-style service).
        self.interrupt_sink: Optional[Callable[[VmdqQueuePair], None]] = None
        self.queues = [
            VmdqQueuePair(sim, i, self._queue_interrupt)
            for i in range(TOTAL_QUEUE_PAIRS)
        ]
        self._mac_to_queue: Dict[MacAddress, int] = {}
        self.wire_rx_packets = 0
        self.default_queue_packets = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def assign_queue(self, guest_id: int, mac: MacAddress) -> Optional[VmdqQueuePair]:
        """Give ``guest_id`` a dedicated queue, if one is free.

        Returns None when all non-default queues are taken — the guest
        then falls back to the shared default queue, exactly the >7-VM
        regime of Fig. 19.
        """
        for queue in self.queues[DEFAULT_QUEUE + 1:]:
            if queue.owner is None:
                queue.owner = guest_id
                self._mac_to_queue[mac] = queue.index
                return queue
        self._mac_to_queue[mac] = DEFAULT_QUEUE
        return None

    def release_queue(self, guest_id: int) -> None:
        for queue in self.queues:
            if queue.owner == guest_id:
                queue.owner = None
        self._mac_to_queue = {
            mac: index for mac, index in self._mac_to_queue.items()
            if index == DEFAULT_QUEUE or self.queues[index].owner is not None
        }

    @property
    def dedicated_queues_available(self) -> int:
        return sum(1 for q in self.queues[DEFAULT_QUEUE + 1:] if q.owner is None)

    def queue_of(self, mac: MacAddress) -> int:
        return self._mac_to_queue.get(mac, DEFAULT_QUEUE)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def wire_receive(self, burst: List[Packet]) -> None:
        """Classify an arriving burst into per-guest queues."""
        self.wire_rx_packets += len(burst)
        by_queue: Dict[int, List[Packet]] = {}
        for packet in burst:
            index = self.queue_of(packet.dst)
            by_queue.setdefault(index, []).append(packet)
        for index, packets in by_queue.items():
            if index == DEFAULT_QUEUE:
                self.default_queue_packets += len(packets)
            self.queues[index].receive(packets)

    def _queue_interrupt(self, queue: VmdqQueuePair) -> None:
        if self.interrupt_sink is not None:
            self.interrupt_sink(queue)
