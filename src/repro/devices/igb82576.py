"""The Intel 82576 Gigabit Ethernet controller, one port.

This is the SR-IOV-capable NIC of the paper's testbed (§6.1): each port
exposes one Physical Function and up to 8 Virtual Functions (7 enabled
in the paper so the PF keeps a queue pair for the service domain).  The
model is register-level where the architecture depends on it:

* the PF carries a full config space with MSI-X and the SR-IOV extended
  capability; VFs carry trimmed spaces that do not answer bus scans;
* each function owns RX/TX descriptor rings ("performance critical
  resources ... duplicated per VF", §4.1) and an interrupt-throttle
  (ITR) register;
* the on-chip L2 switch classifies by (MAC, VLAN) and loops inter-VF
  traffic internally — each internal packet costs *two* crossings of the
  PCIe data path, which is what caps inter-VM throughput (§6.3);
* a mailbox+doorbell channel links each VF to the PF (§4.2);
* every DMA the device performs is translated through the IOMMU with
  the owning function's requester ID.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.devices.l2switch import L2Switch, SwitchTarget
from repro.devices.mailbox import Mailbox
from repro.hw.dma import DescriptorRing
from repro.hw.iommu import Iommu, IommuFault
from repro.hw.msi import MsiMessage, MsixCapability
from repro.hw.pcie.config_space import CAP_ID_MSIX, ConfigSpace
from repro.hw.pcie.datapath import PcieDataPath
from repro.hw.pcie.sriov_cap import SriovCapability
from repro.hw.pcie.topology import PciFunction
from repro.net.link import Link
from repro.net.mac import MacAddress
from repro.net.packet import Packet
from repro.sim.engine import EventHandle, Simulator

INTEL_VENDOR_ID = 0x8086
IGB_PF_DEVICE_ID = 0x10C9
IGB_VF_DEVICE_ID = 0x10CA

#: The 82576 exposes 8 VFs per port; the paper enables 7 (§6.1, Fig. 11).
TOTAL_VFS_PER_PORT = 8

#: Default ring sizes: the paper's dd_bufs (§5.3).
DEFAULT_RING_SIZE = 1024
RX_BUFFER_BYTES = 2048

#: Per-function MSI-X vectors: rx/tx combined + mailbox.
VECTOR_RXTX = 0
VECTOR_MAILBOX = 1
MSIX_TABLE_SIZE = 3

#: TX backlog bound: beyond this much booked DMA time the device drops
#: (hardware would assert flow control / overflow its FIFO).
TX_BACKLOG_LIMIT = 2e-3

#: Default ITR: the VF driver ships with 2 kHz moderation (§5.3).
DEFAULT_ITR_INTERVAL = 1 / 2000


class InterruptThrottle:
    """The ITR register: enforces a minimum inter-interrupt interval.

    ``request`` is called per received packet; the throttle fires the
    supplied callback immediately if the interval has elapsed, otherwise
    schedules a single deferred firing — exactly one interrupt per ITR
    window regardless of packet count ("a single guest interrupt may
    handle multiple incoming packets", §4.1).
    """

    def __init__(self, sim: Simulator, fire: Callable[[], None],
                 interval: float = DEFAULT_ITR_INTERVAL):
        if interval < 0:
            raise ValueError("ITR interval must be non-negative")
        self.sim = sim
        self._fire = fire
        self.interval = interval
        self._last_fired = -float("inf")
        self._pending: Optional[EventHandle] = None
        self.fired = 0

    def set_interval(self, interval: float) -> None:
        """Reprogram the throttle (the AIC policy calls this)."""
        if interval < 0:
            raise ValueError("ITR interval must be non-negative")
        self.interval = interval

    def request(self) -> None:
        """A cause for interrupt exists (packet landed, ring event)."""
        if self._pending is not None:
            return
        due = self._last_fired + self.interval
        if self.sim.now >= due:
            self._do_fire()
        else:
            self._pending = self.sim.schedule_at(due, self._do_fire)

    def cancel(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _do_fire(self) -> None:
        self._pending = None
        self._last_fired = self.sim.now
        self.fired += 1
        self._fire()


class _NetFunction:
    """Data-movement state shared by the PF and each VF."""

    def __init__(self, sim: Simulator, port: "Igb82576Port", name: str,
                 function_index: int, pci: PciFunction):
        self.sim = sim
        self.port = port
        self.name = name
        self.function_index = function_index
        self.pci = pci
        self.rx_ring = DescriptorRing(DEFAULT_RING_SIZE, f"{name}.rx")
        self.tx_ring = DescriptorRing(DEFAULT_RING_SIZE, f"{name}.tx")
        self.msix = MsixCapability(MSIX_TABLE_SIZE, self._post_msi)
        self.throttle = InterruptThrottle(sim, self._raise_rxtx)
        #: §4.3 policy knobs, set by the PF driver.  ``tx_rate_limit_bps``
        #: is the device's per-pool transmit rate limiter; 0 = unlimited.
        self.tx_rate_limit_bps: float = 0.0
        self._tx_tokens: float = 0.0
        self._tx_tokens_at: float = 0.0
        self.tx_rate_limited_drops = 0
        #: §4.3 interrupt-throttling floor: the longest interrupt rate
        #: the PF allows this function to request.  Guest writes to the
        #: throttle below this interval are clamped.  0 = no floor.
        self.itr_floor_interval: float = 0.0
        self.mac: Optional[MacAddress] = None
        self.enabled = False
        #: Installed by the fluid datapath (repro.sim.fluid): called
        #: after every ITR register rewrite so a collapsed flow can
        #: revalidate its replay-order window at the instant of the
        #: change (ITR writes happen at sample ticks — settle points).
        self.fluid_listener = None
        # Statistics.  Conservation law (audited): every offered packet
        # is accounted exactly once — rx_offered == rx_packets +
        # rx_no_desc_drops + rx_dma_faults + rx_corrupt_drops.
        self.rx_offered = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_no_desc_drops = 0
        self.rx_dma_faults = 0
        self.rx_corrupt_drops = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_spoof_drops = 0
        self.tx_backlog_drops = 0

    # ------------------------------------------------------------------
    # interrupt plumbing
    # ------------------------------------------------------------------
    def _post_msi(self, message: MsiMessage) -> None:
        self.port.deliver_interrupt(self, message)

    def _raise_rxtx(self) -> None:
        self.msix.raise_vector(VECTOR_RXTX)

    def raise_mailbox_interrupt(self) -> None:
        self.msix.raise_vector(VECTOR_MAILBOX)

    # ------------------------------------------------------------------
    # receive side (device fills driver-posted descriptors)
    # ------------------------------------------------------------------
    def device_receive(self, burst: List[Packet]) -> int:
        """DMA a burst into this function's RX ring; returns accepted."""
        self.rx_offered += len(burst)
        if not self.enabled:
            self.rx_no_desc_drops += len(burst)
            return 0
        if not burst:
            return 0
        if self.port.rx_corrupt_budget > 0:
            return self._device_receive_faulty(burst)
        # Burst fast path: the IOMMU context is resolved once, ring state
        # and translation tables are locals, and statistics land as one
        # batched update per burst.  Counter totals and per-packet
        # accept/drop decisions are identical to the per-packet path.
        ring = self.rx_ring
        slots = ring.slots
        mask = ring._mask
        head = ring.head
        tail = ring.tail
        iommu = self.port.iommu
        lookup = None
        no_context = False
        if iommu is not None:
            table = iommu._contexts.get(self._rid())
            if table is None:
                no_context = True
            else:
                lookup = table._entries.get
        accepted = 0
        rx_bytes = 0
        no_desc = 0
        faults = 0
        for packet in burst:
            if head == tail:
                no_desc += 1
                continue
            slot = slots[head]
            if no_context:
                faults += 1
                continue
            if lookup is not None:
                entry = lookup(slot.buffer_addr >> 12)
                if entry is None or not entry[1]:
                    faults += 1
                    continue
            slot.done = True
            slot.packet = packet
            head = (head + 1) & mask
            accepted += 1
            rx_bytes += packet.size_bytes
        ring.head = head
        ring.completed += accepted
        self.rx_packets += accepted
        self.rx_bytes += rx_bytes
        if no_desc:
            self.rx_no_desc_drops += no_desc
        if faults:
            self.rx_dma_faults += faults
            iommu.faults += faults
        if iommu is not None:
            iommu.translations += accepted
        if accepted:
            self.throttle.request()
        return accepted

    def fluid_receive(self, count: int, accepted: int, rx_bytes: int) -> None:
        """Apply a collapsed burst's receive statistics arithmetically.

        The fluid datapath (:mod:`repro.sim.fluid`) has already made the
        accept/drop decision from the frozen ring capacity; this mirrors
        the batched statistics update of :meth:`device_receive` without
        walking descriptors.  The throttle request is the caller's job —
        the fluid mode replays it virtually per tick.
        """
        self.rx_offered += count
        self.rx_packets += accepted
        self.rx_bytes += rx_bytes
        if count != accepted:
            self.rx_no_desc_drops += count - accepted
        self.rx_ring.completed += accepted
        iommu = self.port.iommu
        if iommu is not None:
            iommu.translations += accepted

    def _device_receive_faulty(self, burst: List[Packet]) -> int:
        """The exact per-packet path, kept for injected RX corruption."""
        accepted = 0
        iommu = self.port.iommu
        for packet in burst:
            if self.port.rx_corrupt_budget > 0:
                # Injected DMA/descriptor corruption: the write lands
                # with a bad checksum; the frame is dropped and counted
                # exactly as on an error-status descriptor.
                self.port.rx_corrupt_budget -= 1
                self.port.rx_corrupted += 1
                self.rx_corrupt_drops += 1
                continue
            if self.rx_ring.empty:
                self.rx_no_desc_drops += 1
                continue
            slot = self.rx_ring.slots[self.rx_ring.head]
            if iommu is not None:
                try:
                    iommu.translate(self._rid(), slot.buffer_addr, write=True)
                except IommuFault:
                    self.rx_dma_faults += 1
                    continue
            self.rx_ring.consume(packet)
            self.rx_packets += 1
            self.rx_bytes += packet.size_bytes
            accepted += 1
        if accepted:
            self.throttle.request()
        return accepted

    # ------------------------------------------------------------------
    # transmit side (device drains driver-posted descriptors)
    # ------------------------------------------------------------------
    def hw_transmit(self, burst: List[Packet]) -> int:
        """Transmit a burst out of this function; returns accepted count.

        Applies anti-spoofing, books the PCIe DMA crossings, and routes
        each packet through the internal switch or out the wire.
        """
        if not self.enabled:
            return 0
        sent = 0
        for packet in burst:
            if not self.port.switch.check_transmit(self.function_index, packet):
                self.tx_spoof_drops += 1
                continue
            if not self._tx_rate_allows(packet.size_bytes):
                self.tx_rate_limited_drops += 1
                continue
            if not self.port.route_transmit(self, packet):
                self.tx_backlog_drops += 1
                continue
            self.tx_packets += 1
            self.tx_bytes += packet.size_bytes
            sent += 1
        return sent

    def _tx_rate_allows(self, size_bytes: int) -> bool:
        """The per-pool transmit rate limiter (a token bucket refilled
        at the programmed rate, one second of burst depth)."""
        limit = self.tx_rate_limit_bps
        if limit <= 0:
            return True
        now = self.sim.now
        self._tx_tokens = min(
            limit,  # bucket depth: one second's worth of bits
            self._tx_tokens + (now - self._tx_tokens_at) * limit)
        self._tx_tokens_at = now
        bits = size_bytes * 8
        if self._tx_tokens < bits:
            return False
        self._tx_tokens -= bits
        return True

    def _rid(self) -> int:
        if self.pci.rid is None:
            raise RuntimeError(f"{self.name} transmitting before RID assignment")
        return self.pci.rid

    def reset(self) -> None:
        """Function-level reset: rings cleared, interrupts quiesced."""
        self.rx_ring.reset()
        self.tx_ring.reset()
        self.throttle.cancel()
        self.enabled = False


class VirtualFunction(_NetFunction):
    """A VF: trimmed config space, dedicated rings, mailbox to the PF."""

    def __init__(self, sim: Simulator, port: "Igb82576Port", index: int):
        config = ConfigSpace(INTEL_VENDOR_ID, IGB_VF_DEVICE_ID)
        config.add_capability(CAP_ID_MSIX, 12)
        pci = PciFunction(config, responds_to_scan=False,
                          name=f"{port.name}.vf{index}")
        super().__init__(sim, port, f"{port.name}.vf{index}", index, pci)
        self.index = index
        self.mailbox = Mailbox(index)
        from repro.devices.igb_regs import build_vf_registers
        #: The VF BAR's register file (VTCTRL, VTEITR...).
        self.regs = build_vf_registers(self)

    @property
    def assigned_rid(self) -> Optional[int]:
        return self.pci.rid


class PhysicalFunction(_NetFunction):
    """The PF: full config space with the SR-IOV extended capability."""

    def __init__(self, sim: Simulator, port: "Igb82576Port"):
        config = ConfigSpace(INTEL_VENDOR_ID, IGB_PF_DEVICE_ID)
        config.add_capability(CAP_ID_MSIX, 12)
        pci = PciFunction(config, responds_to_scan=True, name=f"{port.name}.pf")
        super().__init__(sim, port, f"{port.name}.pf", SwitchTarget.PF, pci)
        self.sriov = SriovCapability(config, total_vfs=TOTAL_VFS_PER_PORT,
                                     vf_device_id=IGB_VF_DEVICE_ID)
        self.enabled = True  # the PF is alive as soon as the port exists


class Igb82576Port:
    """One 1 GbE port of an 82576: PF + VFs + switch + wire."""

    LINE_RATE_BPS = 1e9
    #: Receive-address table entries in the PF register map.
    RECEIVE_ADDRESS_ENTRIES = 16

    def __init__(
        self,
        sim: Simulator,
        index: int = 0,
        iommu: Optional[Iommu] = None,
        datapath: Optional[PcieDataPath] = None,
        name: str = "",
    ):
        self.sim = sim
        self.index = index
        self.name = name or f"igb{index}"
        self.iommu = iommu
        self.datapath = datapath if datapath is not None else PcieDataPath(
            sim, name=f"{self.name}.dma")
        self.switch = L2Switch(f"{self.name}.switch")
        self.link_up = True
        self.pf = PhysicalFunction(sim, self)
        from repro.devices.igb_regs import build_pf_registers
        #: The PF BAR0 register file (CTRL/STATUS/RCTL/RAL/RAH/EITR...).
        self.regs = build_pf_registers(self, self.RECEIVE_ADDRESS_ENTRIES)
        self.vfs: List[VirtualFunction] = []
        self.uplink: Optional[Link] = None
        self._classify_cache: dict = {}
        self._classify_generation = -1
        #: Set by the platform/hypervisor: (function, MsiMessage) sink.
        self.interrupt_sink: Optional[Callable[["_NetFunction", MsiMessage], None]] = None
        self.wire_rx_packets = 0
        self.wire_tx_packets = 0
        self.internal_loopback_packets = 0
        #: Installed by the cluster fluid datapath: the collapsed
        #: transmit flow staging this port's uplink egress.  Inbound
        #: wire traffic must settle it first — its lazy DMA bookings
        #: and the ingress booking share the pipe's busy horizon.
        self._fluid_tx = None
        #: Fault injection: the next N RX DMA writes on this port land
        #: corrupted (bad checksum in the descriptor status); counted
        #: per port and dropped by the receiving function.
        self.rx_corrupt_budget = 0
        self.rx_corrupted = 0

    # ------------------------------------------------------------------
    # VF lifecycle (driven by the PF driver through the SR-IOV cap)
    # ------------------------------------------------------------------
    def enable_vfs(self, count: int) -> List[VirtualFunction]:
        """Program NumVFs + VF Enable; materializes the VF functions.

        RIDs follow the capability's offset/stride arithmetic from the
        PF's own RID (which must be assigned, i.e. the PF attached to a
        root complex, first).
        """
        if self.vfs:
            raise RuntimeError("VFs already enabled on this port")
        pf_rid = self.pf.pci.rid
        if pf_rid is None:
            raise RuntimeError("attach the PF to a root complex before enabling VFs")
        self.pf.sriov.num_vfs = count
        self.pf.sriov.enable_vfs()
        for i in range(count):
            vf = VirtualFunction(self.sim, self, i)
            vf.pci.rid = self.pf.sriov.vf_rid(pf_rid, i)
            self.vfs.append(vf)
        return list(self.vfs)

    def disable_vfs(self) -> None:
        for vf in self.vfs:
            vf.reset()
        self.vfs.clear()
        self.pf.sriov.disable_vfs()

    def vf(self, index: int) -> VirtualFunction:
        return self.vfs[index]

    # ------------------------------------------------------------------
    # wire side
    # ------------------------------------------------------------------
    def attach_uplink(self, link: Link) -> None:
        """Connect the TX direction of the wire."""
        self.uplink = link

    def wire_receive(self, burst: List[Packet]) -> None:
        """Packets arriving from the physical line.

        Classification results are cached per (dst, vlan) against the
        switch's programming generation — the wire-rate fast path of
        this model, like the real switch's CAM.
        """
        fluid_tx = self._fluid_tx
        if fluid_tx is not None:
            fluid_tx.settle_strict()
        self.wire_rx_packets += len(burst)
        if self._classify_generation != self.switch.generation:
            self._classify_cache.clear()
            self._classify_generation = self.switch.generation
        cache = self._classify_cache
        by_function: dict = {}
        # Targets are resolved once per run of equal (dst, vlan) keys.
        # A netperf burst is one flow — and reuses one MacAddress object
        # per stream — so run detection is an identity check and the
        # per-packet work collapses to one bound append (the dominant
        # single-destination case) into already-resolved lists.
        run_dst = None
        run_vlan = None
        run_lists: list = []
        run_append = None
        for packet in burst:
            dst = packet.dst
            vlan = packet.vlan
            if dst is not run_dst or vlan != run_vlan:
                run_dst = dst
                run_vlan = vlan
                key = (dst, vlan)
                targets = cache.get(key)
                if targets is None:
                    targets = self.switch.classify(packet)
                    cache[key] = targets
                run_lists = []
                for target in targets:
                    if target.is_uplink:
                        continue  # came from the wire; nothing local wants it
                    function = self._function_for(target)
                    if function is not None:
                        entry = by_function.get(id(function))
                        if entry is None:
                            entry = (function, [])
                            by_function[id(function)] = entry
                        run_lists.append(entry[1])
                run_append = (run_lists[0].append
                              if len(run_lists) == 1 else None)
            if run_append is not None:
                run_append(packet)
            else:
                for packets in run_lists:
                    packets.append(packet)
        for function, packets in by_function.values():
            # One DMA crossing host-ward per packet, booked as a batch.
            self.datapath.transfer(sum(p.size_bytes for p in packets))
            function.device_receive(packets)

    def wire_receive_one(self, packet: Packet) -> None:
        """Link-compatible single-packet ingress."""
        self.wire_receive([packet])

    def fluid_wire_receive(self, count: int, wire_bytes: int,
                           at: float) -> None:
        """Apply a collapsed burst's wire-side books as of time ``at``.

        Mirrors :meth:`wire_receive`'s counter and DMA bookings for a
        burst whose classification the fluid datapath already pinned to
        a single function; the booking time is passed explicitly because
        collapsed ticks are applied lazily (after ``sim.now`` has moved
        past the instant the exact run would have booked them).
        """
        self.wire_rx_packets += count
        self.datapath.transfer_at(at, wire_bytes)

    # ------------------------------------------------------------------
    # transmit routing
    # ------------------------------------------------------------------
    def route_transmit(self, source: "_NetFunction", packet: Packet) -> bool:
        """Route one TX packet: internal loopback or out the wire.

        Returns False when the PCIe data path is too backlogged (the
        hardware-FIFO-full condition that caps inter-VM throughput).
        """
        if self.datapath.backlog_seconds > TX_BACKLOG_LIMIT:
            return False
        if self.switch.is_local(packet.dst, packet.vlan):
            targets = self.switch.classify(packet)
            # Internal: DMA down (TX read) and up (RX write) — 2 crossings.
            self.internal_loopback_packets += 1
            for target in targets:
                function = self._function_for(target)
                if function is None or function is source:
                    continue
                self.datapath.transfer(
                    2 * packet.size_bytes,
                    self._deliver_internal(function, packet),
                )
            return True
        # Out the wire: one DMA crossing, then line serialization.
        self.datapath.transfer(packet.size_bytes)
        self.wire_tx_packets += 1
        if self.uplink is not None:
            return self.uplink.transmit(packet)
        return True

    def _deliver_internal(self, function: "_NetFunction", packet: Packet):
        def deliver() -> None:
            function.device_receive([packet])
        return deliver

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------
    def deliver_interrupt(self, function: "_NetFunction",
                          message: MsiMessage) -> None:
        if self.interrupt_sink is None:
            raise RuntimeError(
                f"{self.name}: MSI raised but no interrupt sink installed"
            )
        self.interrupt_sink(function, message)

    # ------------------------------------------------------------------
    def _function_for(self, target: SwitchTarget) -> Optional["_NetFunction"]:
        if target.is_pf:
            return self.pf
        if target.is_uplink:
            return None
        if 0 <= target.function_index < len(self.vfs):
            return self.vfs[target.function_index]
        return None
