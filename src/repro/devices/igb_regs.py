"""The 82576 register map (the subset the paper's drivers touch).

Binds datasheet registers to device behaviour, so the drivers program
the NIC the way the real igb/igbvf do — through MMIO writes:

* **CTRL.RST** (offset 0x0000, bit 26) — global device reset: every
  function's rings drop what they held.
* **STATUS.LU** (0x0008, bit 1) — link up, read dynamically.
* **RCTL.RXEN** (0x0100, bit 1) — receive enable for the PF.
* **RAL/RAH[0..15]** (0x5400 + 8i / 0x5404 + 8i) — the receive-address
  table.  RAH carries the MAC's high 16 bits, a pool-select field
  (which function owns the address — how MAC-based L2 switching is
  programmed on this part) and the Address-Valid bit.
* **EITR[n]** (0x1680 + 4n) — per-vector interrupt throttle, interval
  in microseconds (the model's granularity).

Each VF's BAR exposes the VF-relative subset: VTCTRL.RST and
VTEITR[0..2].
"""

from __future__ import annotations

from repro.hw.registers import RegisterFile
from repro.net.mac import MacAddress

# PF register offsets (82576 datasheet).
REG_CTRL = 0x0000
REG_STATUS = 0x0008
REG_RCTL = 0x0100
REG_EITR_BASE = 0x1680
REG_RAL_BASE = 0x5400
RECEIVE_ADDRESS_ENTRIES = 16
EITR_VECTORS = 25

CTRL_RST = 1 << 26
STATUS_LU = 1 << 1
RCTL_RXEN = 1 << 1
RAH_AV = 1 << 31
RAH_POOL_SHIFT = 18
RAH_POOL_MASK = 0x7F

# VF (VT) register offsets within the VF BAR.
REG_VTCTRL = 0x0000
REG_VTEITR_BASE = 0x1680
VTEITR_VECTORS = 3

#: EITR interval granularity in this model: 1 microsecond.
EITR_USEC = 1e-6


def mac_from_ral_rah(ral: int, rah: int) -> MacAddress:
    """Assemble the 48-bit address from its register halves.

    The 82576 stores the MAC little-endian across RAL/RAH: RAL byte 0
    is the first octet on the wire.
    """
    raw = (ral & 0xFFFFFFFF) | ((rah & 0xFFFF) << 32)
    octets = [(raw >> (8 * i)) & 0xFF for i in range(6)]
    value = 0
    for octet in octets:
        value = (value << 8) | octet
    return MacAddress(value)


def ral_rah_for_mac(mac: MacAddress, pool: int, valid: bool = True) -> "tuple[int, int]":
    """The register pair that programs ``mac`` into a pool."""
    octets = [(mac.value >> (8 * (5 - i))) & 0xFF for i in range(6)]
    ral = (octets[0] | (octets[1] << 8) | (octets[2] << 16)
           | (octets[3] << 24))
    rah = octets[4] | (octets[5] << 8)
    rah |= (pool & RAH_POOL_MASK) << RAH_POOL_SHIFT
    if valid:
        rah |= RAH_AV
    return ral, rah


def build_pf_registers(port, ra_entries: int = RECEIVE_ADDRESS_ENTRIES) -> RegisterFile:
    """The PF BAR0 register file, with behaviour hooks into ``port``.

    ``ra_entries`` sizes the receive-address table (16 on the 82576,
    128 on the 82599; the model keeps one layout for both families).
    """
    from repro.devices.l2switch import SwitchTarget  # local: avoid cycle

    regs = RegisterFile(f"{port.name}.pf.bar0")

    def on_ctrl_write(old: int, new: int) -> None:
        if new & CTRL_RST:
            # Global device reset: all functions lose their rings.
            port.pf.rx_ring.reset()
            port.pf.tx_ring.reset()
            for vf in port.vfs:
                vf.rx_ring.reset()
                vf.tx_ring.reset()
            # RST self-clears.
            regs.poke("CTRL", new & ~CTRL_RST)

    regs.define("CTRL", REG_CTRL, on_write=on_ctrl_write)
    regs.define("STATUS", REG_STATUS, read_only=True,
                on_read=lambda: STATUS_LU if port.link_up else 0)
    regs.define("RCTL", REG_RCTL)

    def make_eitr_hook(index: int):
        def hook(old: int, new: int) -> None:
            if index == 0:
                interval = (new & 0xFFFF) * EITR_USEC
                port.pf.throttle.set_interval(interval)
        return hook

    for i in range(EITR_VECTORS):
        regs.define(f"EITR{i}", REG_EITR_BASE + 4 * i,
                    on_write=make_eitr_hook(i))

    def make_rah_hook(index: int):
        def hook(old: int, new: int) -> None:
            ral = regs.peek(f"RAL{index}")
            if old & RAH_AV:
                # Entry is being replaced/cleared: unprogram the old
                # address (drivers write RAL first, then RAH).
                port.switch.unprogram(mac_from_ral_rah(ral, old))
            if new & RAH_AV:
                mac = mac_from_ral_rah(ral, new)
                pool = (new >> RAH_POOL_SHIFT) & RAH_POOL_MASK
                target = SwitchTarget.PF if pool == 0 else pool - 1
                port.switch.program(mac, target)
        return hook

    for i in range(ra_entries):
        regs.define(f"RAL{i}", REG_RAL_BASE + 8 * i)
        regs.define(f"RAH{i}", REG_RAL_BASE + 4 + 8 * i,
                    on_write=make_rah_hook(i))
    return regs


def build_vf_registers(vf) -> RegisterFile:
    """One VF's BAR register file."""
    regs = RegisterFile(f"{vf.name}.bar0")

    def on_vtctrl_write(old: int, new: int) -> None:
        if new & CTRL_RST:
            vf.reset()
            regs.poke("VTCTRL", new & ~CTRL_RST)

    regs.define("VTCTRL", REG_VTCTRL, on_write=on_vtctrl_write)

    def make_vteitr_hook(index: int):
        def hook(old: int, new: int) -> None:
            if index == 0:
                interval = (new & 0xFFFF) * EITR_USEC
                # §4.3 enforcement: the PF may impose an interrupt-
                # throttling floor; guest requests below it are clamped.
                interval = max(interval, vf.itr_floor_interval)
                listener = vf.fluid_listener
                if listener is not None:
                    # Before the write lands: the open collapsed window
                    # must replay under the interval it ran with in the
                    # exact engine, not the one being programmed.
                    listener(interval)
                vf.throttle.set_interval(interval)
        return hook

    for i in range(VTEITR_VECTORS):
        regs.define(f"VTEITR{i}", REG_VTEITR_BASE + 4 * i,
                    on_write=make_vteitr_hook(i))
    return regs
