"""The PF <-> VF mailbox and doorbell channel.

Paper §4.2: "the communications between the VF and PF drivers depends on
a private hardware-based channel ... The Intel 82576 implemented that
type of hardware-based communication method with a simple mailbox and
doorbell system.  The sender writes a message to the mailbox and then
'rings the doorbell', which will interrupt and notify the receiver that
a message is ready for consumption.  The receiver consumes the message
and sets a bit in a shared register, indicating acknowledgment."

This channel is the key to VMM portability: because requests like "add
this multicast address" flow through *device registers*, neither driver
ever calls a hypervisor-specific API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.engine import EventHandle, Simulator
from repro.sim.trace import NULL_TRACER

#: The 82576 mailbox memory is 16 dwords per VF.
MAILBOX_DWORDS = 16

#: Sender-side retry defaults: the real igb polls its mailbox on a
#: millisecond scale; four exponentially backed-off re-rings cover a
#: ~15 ms outage before the sender abandons the channel.
RETRY_TIMEOUT = 1e-3
RETRY_LIMIT = 4
RETRY_BACKOFF = 2.0

#: Control-register bits (modelled after the 82576 VMBX register).
BIT_REQUEST = 1 << 0   # sender rang the doorbell
BIT_ACK = 1 << 1       # receiver acknowledged
BIT_BUSY = 1 << 2      # message buffer owned by sender


class MailboxError(RuntimeError):
    """Protocol violation: overlapping send, oversized message..."""


@dataclass(frozen=True)
class MailboxMessage:
    """A typed message plus its raw dword payload."""

    kind: str
    payload: Tuple[int, ...] = ()
    #: Arbitrary structured argument for convenience at the driver level.
    body: Any = None

    def __post_init__(self) -> None:
        if len(self.payload) > MAILBOX_DWORDS:
            raise MailboxError(
                f"message payload {len(self.payload)} dwords exceeds "
                f"mailbox size {MAILBOX_DWORDS}"
            )


class _Endpoint:
    """One side's view of the shared mailbox."""

    def __init__(self) -> None:
        self.control: int = 0
        self.buffer: Optional[MailboxMessage] = None
        self.on_doorbell: Optional[Callable[[MailboxMessage], None]] = None
        self.sent = 0
        self.received = 0


class Mailbox:
    """The bidirectional mailbox between one VF and its PF.

    Each direction follows the same protocol: ``send`` latches the
    message and rings the doorbell (interrupting the peer), the peer's
    handler runs, and ``acknowledge`` releases the buffer.  A second send
    before acknowledgment is a protocol violation, as on hardware.
    """

    PF = "pf"
    VF = "vf"

    def __init__(self, vf_index: int = 0):
        self.vf_index = vf_index
        self._ends: Dict[str, _Endpoint] = {self.PF: _Endpoint(), self.VF: _Endpoint()}
        #: Installed by the telemetry layer; spans one doorbell round
        #: trip from ``send`` to ``acknowledge``.
        self.trace = NULL_TRACER
        #: Fault-injection hook: ``hook(sender, message) -> True`` eats
        #: the doorbell interrupt (the message stays latched, the
        #: receiver never runs).  None = lossless, the hardware default.
        self.loss_hook: Optional[Callable[[str, MailboxMessage], bool]] = None
        self.dropped_doorbells = 0

    # ------------------------------------------------------------------
    def connect(self, side: str, on_doorbell: Callable[[MailboxMessage], None]) -> None:
        """Register ``side``'s doorbell interrupt handler."""
        self._end(side).on_doorbell = on_doorbell

    def send(self, sender: str, message: MailboxMessage) -> None:
        """Write the message and ring the peer's doorbell."""
        receiver = self._peer(sender)
        peer = self._end(receiver)
        if peer.control & BIT_REQUEST and not peer.control & BIT_ACK:
            raise MailboxError(
                f"{sender} mailbox busy: previous message not yet acknowledged"
            )
        peer.buffer = message
        peer.control = BIT_REQUEST | BIT_BUSY
        self._end(sender).sent += 1
        if peer.on_doorbell is None:
            raise MailboxError(f"{receiver} side has no doorbell handler connected")
        self.trace.begin("mbx", f"vf{self.vf_index}", sender=sender,
                         kind=message.kind)
        if self.loss_hook is not None and self.loss_hook(sender, message):
            # The doorbell interrupt is lost; the message stays latched
            # (BUSY set, no ACK) until the sender re-rings or abandons.
            self.dropped_doorbells += 1
            self.trace.emit("mbx", f"vf{self.vf_index}.doorbell_lost",
                            sender=sender, kind=message.kind)
            return
        peer.on_doorbell(message)

    def kick(self, sender: str) -> None:
        """Re-ring the doorbell for a latched, unacknowledged message —
        the sender-side retry path.  No-op when the channel is clear."""
        receiver = self._peer(sender)
        peer = self._end(receiver)
        if peer.buffer is None or not self.pending(receiver):
            return
        if peer.on_doorbell is None:
            raise MailboxError(f"{receiver} side has no doorbell handler connected")
        message = peer.buffer
        self.trace.emit("mbx", f"vf{self.vf_index}.kick", sender=sender,
                        kind=message.kind)
        if self.loss_hook is not None and self.loss_hook(sender, message):
            self.dropped_doorbells += 1
            return
        peer.on_doorbell(message)

    def abandon(self, sender: str) -> None:
        """Sender gives up on an unacknowledged message, clearing the
        channel so the next ``send`` is not a protocol violation (as
        hardware does when the PF times a VF out)."""
        receiver = self._peer(sender)
        peer = self._end(receiver)
        if not self.pending(receiver):
            return
        peer.control = 0
        peer.buffer = None
        self.trace.end("mbx", f"vf{self.vf_index}", receiver="abandoned")

    def read(self, side: str) -> MailboxMessage:
        """Receiver consumes the message (without acknowledging yet)."""
        end = self._end(side)
        if end.buffer is None or not end.control & BIT_REQUEST:
            raise MailboxError(f"no message pending for {side}")
        end.received += 1
        return end.buffer

    def acknowledge(self, side: str) -> None:
        """Receiver sets the ACK bit, releasing the channel."""
        end = self._end(side)
        if not end.control & BIT_REQUEST:
            raise MailboxError(f"{side} acknowledging with no message pending")
        end.control |= BIT_ACK
        end.control &= ~BIT_BUSY
        end.buffer = None
        self.trace.end("mbx", f"vf{self.vf_index}", receiver=side)

    # ------------------------------------------------------------------
    def pending(self, side: str) -> bool:
        end = self._end(side)
        return bool(end.control & BIT_REQUEST) and not bool(end.control & BIT_ACK)

    def stats(self, side: str) -> Tuple[int, int]:
        end = self._end(side)
        return end.sent, end.received

    # ------------------------------------------------------------------
    def _end(self, side: str) -> _Endpoint:
        if side not in self._ends:
            raise MailboxError(f"unknown mailbox side {side!r}")
        return self._ends[side]

    def _peer(self, side: str) -> str:
        self._end(side)
        return self.VF if side == self.PF else self.PF


class MailboxRetrier:
    """Sender-side timeout / retry / backoff around the doorbell.

    The happy path is untouched: delivery is synchronous, the receiver
    acknowledges inside its handler, and :meth:`send` returns with the
    channel clear — no timer is ever armed, so lossless runs schedule
    zero extra events.  When the doorbell is lost the message stays
    latched; the retrier re-rings it after an exponentially backed-off
    timeout and abandons the channel after ``limit`` retries, so a
    permanently dead peer degrades the service instead of wedging the
    mailbox (the next send would otherwise raise :class:`MailboxError`).
    """

    def __init__(self, sim: Simulator, mailbox: Mailbox, side: str,
                 timeout: float = RETRY_TIMEOUT, limit: int = RETRY_LIMIT,
                 backoff: float = RETRY_BACKOFF):
        if timeout <= 0:
            raise ValueError("retry timeout must be positive")
        if limit < 0:
            raise ValueError("retry limit must be non-negative")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        self.sim = sim
        self.mailbox = mailbox
        self.side = side
        self.timeout = timeout
        self.limit = limit
        self.backoff = backoff
        self.retries = 0
        self.abandoned = 0
        self.overruns = 0
        self._timer: Optional[EventHandle] = None

    @property
    def _receiver(self) -> str:
        return self.mailbox._peer(self.side)

    def send(self, message: MailboxMessage) -> None:
        """Send with retry protection; overwrites a previous message
        whose doorbell was lost (hardware semantics: the old message
        is simply gone, counted as an overrun)."""
        if self.mailbox.pending(self._receiver):
            self.overruns += 1
            self._cancel_timer()
            self.mailbox.abandon(self.side)
        self.mailbox.send(self.side, message)
        self._arm(0)

    def _arm(self, attempt: int) -> None:
        if not self.mailbox.pending(self._receiver):
            self._timer = None
            return
        delay = self.timeout * (self.backoff ** attempt)
        self._timer = self.sim.schedule(delay, self._expire, attempt)

    def _expire(self, attempt: int) -> None:
        self._timer = None
        if not self.mailbox.pending(self._receiver):
            return
        if attempt >= self.limit:
            self.abandoned += 1
            self.mailbox.abandon(self.side)
            return
        self.retries += 1
        self.mailbox.kick(self.side)
        self._arm(attempt + 1)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
