"""The NIC's on-chip layer-2 switch.

"The layer 2 switching classifies incoming packets, based on MAC and
VLAN addresses, directly stores the packets to the recipient's buffer
through the DMA" (paper §4.1).  The PF driver programs the (MAC, VLAN)
-> function table and is "responsible for configuring layer 2 switching,
to make sure that incoming packets, from either the physical line or
from other VFs, are properly routed".

The same table also enforces transmit-side anti-spoofing: a VF whose
guest forges a source MAC gets its packet dropped and counted, one of
the §4.3 policy hooks the PF driver can monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.mac import MacAddress, VLAN_NONE, validate_vlan
from repro.net.packet import Packet


@dataclass(frozen=True)
class SwitchTarget:
    """Where the switch delivers a classified packet.

    ``function_index`` is the receiving function: 0..N-1 for VFs, or
    :attr:`PF` for the physical function's own queues.
    """

    PF = -1
    UPLINK = -2

    function_index: int

    @property
    def is_uplink(self) -> bool:
        return self.function_index == self.UPLINK

    @property
    def is_pf(self) -> bool:
        return self.function_index == self.PF


class L2Switch:
    """(MAC, VLAN) classification with anti-spoof filtering."""

    def __init__(self, name: str = ""):
        self.name = name
        self._table: Dict[Tuple[MacAddress, int], int] = {}
        #: function index -> its assigned MAC (for anti-spoof).
        self._function_macs: Dict[int, MacAddress] = {}
        #: multicast group MAC -> set of subscribed function indexes
        #: (the per-function MTA tables, §4.2's "list of multicast
        #: addresses" the VF driver requests through the mailbox).
        self._multicast: Dict[MacAddress, set] = {}
        #: Bumped on every (un)program so classification caches can
        #: invalidate.
        self.generation = 0
        self.spoofed_drops = 0
        self.unknown_unicast = 0

    # ------------------------------------------------------------------
    # PF-driver-facing configuration
    # ------------------------------------------------------------------
    def program(self, mac: MacAddress, function_index: int,
                vlan: int = VLAN_NONE) -> None:
        """Bind (mac, vlan) to a receiving function."""
        validate_vlan(vlan)
        self._table[(mac, vlan)] = function_index
        self.generation += 1
        if function_index != SwitchTarget.UPLINK:
            # The function's primary (anti-spoof) address is its most
            # recently programmed one.
            self._function_macs[function_index] = mac

    def unprogram(self, mac: MacAddress, vlan: int = VLAN_NONE) -> None:
        self._table.pop((mac, vlan), None)
        self.generation += 1

    def subscribe_multicast(self, function_index: int,
                            mac: MacAddress) -> None:
        """Add a function to a multicast group's delivery set."""
        if not mac.is_multicast:
            raise ValueError(f"{mac} is not a multicast address")
        self._multicast.setdefault(mac, set()).add(function_index)
        self.generation += 1

    def unsubscribe_multicast(self, function_index: int,
                              mac: MacAddress) -> None:
        subscribers = self._multicast.get(mac)
        if subscribers is not None:
            subscribers.discard(function_index)
            if not subscribers:
                del self._multicast[mac]
        self.generation += 1

    def multicast_subscribers(self, mac: MacAddress) -> "set":
        return set(self._multicast.get(mac, ()))

    def entries(self) -> List[Tuple[MacAddress, int, int]]:
        return [(mac, vlan, fn) for (mac, vlan), fn in sorted(
            self._table.items(), key=lambda item: (item[0][0].value, item[0][1])
        )]

    def mac_of(self, function_index: int) -> Optional[MacAddress]:
        return self._function_macs.get(function_index)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def classify(self, packet: Packet) -> List[SwitchTarget]:
        """Route an incoming (wire or loopback) packet.

        Multicast/broadcast floods to every local function; unknown
        unicast goes to the uplink (out the wire / dropped if it *came*
        from the wire — the caller knows the ingress side).
        """
        if packet.dst.is_multicast:
            if packet.dst.is_broadcast:
                # Broadcast floods every local function.
                return [SwitchTarget(fn)
                        for fn in sorted(set(self._function_macs))]
            # Multicast delivers to subscribed functions only.
            return [SwitchTarget(fn)
                    for fn in sorted(self._multicast.get(packet.dst, ()))]
        target = self._table.get((packet.dst, packet.vlan))
        if target is None and packet.vlan != VLAN_NONE:
            # Untagged table entry still matches a tagged frame's MAC.
            target = self._table.get((packet.dst, VLAN_NONE))
        if target is None:
            self.unknown_unicast += 1
            return [SwitchTarget(SwitchTarget.UPLINK)]
        return [SwitchTarget(target)]

    def resolve_unicast(self, dst: MacAddress,
                        vlan: int = VLAN_NONE) -> Optional[int]:
        """Side-effect-free unicast lookup for the fluid datapath.

        Returns the local function index (mac, vlan) resolves to, or
        ``None`` for multicast/broadcast, unknown unicast, and uplink
        bindings — exactly the cases where :meth:`classify` would flood,
        count, or forward off-chip.  No counters move: eligibility
        probing must not perturb the exact-mode books.
        """
        if dst.is_multicast:
            return None
        target = self._table.get((dst, vlan))
        if target is None and vlan != VLAN_NONE:
            target = self._table.get((dst, VLAN_NONE))
        if target is None or target == SwitchTarget.UPLINK:
            return None
        return target

    def check_transmit(self, function_index: int, packet: Packet) -> bool:
        """Anti-spoof: the source MAC must be the function's own."""
        assigned = self._function_macs.get(function_index)
        if assigned is not None and packet.src != assigned:
            self.spoofed_drops += 1
            return False
        return True

    def is_local(self, mac: MacAddress, vlan: int = VLAN_NONE) -> bool:
        """Does this (mac, vlan) terminate at a local function?"""
        target = self._table.get((mac, vlan))
        if target is None and vlan != VLAN_NONE:
            target = self._table.get((mac, VLAN_NONE))
        return target is not None and target != SwitchTarget.UPLINK
