"""The Intel 82599: the 10 GbE SR-IOV NIC the paper could not get.

§6.1: "Due to the unavailability of 10 Gbps SR-IOV-capable NIC at the
time we started the research, we use ten port Gigabit SR-IOV-capable
Intel 82576 NICs."  The 82599 shipped shortly after: one 10 GbE port,
64 VFs, a PCIe Gen2 x8 link.  This model is the what-if the paper's
conclusion anticipates — the same architecture on the part the authors
would have used a year later (and the configuration SR-IOV actually
deployed with).

Structurally it *is* an :class:`~repro.devices.igb82576.Igb82576Port`
with bigger constants: same PF/VF split, same mailbox, same L2 switch,
same descriptor rings — which is itself the architectural point: the
§4 software stack is device-parameter agnostic.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.igb82576 import Igb82576Port
from repro.hw.iommu import Iommu
from repro.hw.pcie.datapath import PcieDataPath
from repro.sim.engine import Simulator

#: The 82599 exposes 64 VFs per port.
IXGBE_TOTAL_VFS = 64
IXGBE_PF_DEVICE_ID = 0x10FB
IXGBE_VF_DEVICE_ID = 0x10ED

#: PCIe Gen2 x8: 32 Gb/s raw; ~22 Gb/s of usable DMA payload after
#: 8b/10b coding and TLP overhead (same derivation as the 82576's
#: 5.6 Gb/s on Gen1 x4).
IXGBE_DMA_EFFECTIVE_BPS = 22e9


class Ixgbe82599Port(Igb82576Port):
    """One 10 GbE SR-IOV port with 64 VFs."""

    LINE_RATE_BPS = 10e9
    #: The 82599's receive-address table holds 128 entries.
    RECEIVE_ADDRESS_ENTRIES = 128

    def __init__(self, sim: Simulator, index: int = 0,
                 iommu: Optional[Iommu] = None,
                 datapath: Optional[PcieDataPath] = None,
                 name: str = ""):
        if datapath is None:
            datapath = PcieDataPath(sim, IXGBE_DMA_EFFECTIVE_BPS,
                                    name=f"{name or f'ixgbe{index}'}.dma")
        super().__init__(sim, index, iommu, datapath,
                         name or f"ixgbe{index}")
        # Re-brand the PF and widen the VF budget.
        self.pf.pci.config.write16(0x02, IXGBE_PF_DEVICE_ID)
        self.pf.sriov.config.write16(
            self.pf.sriov.offset + 0x0E, IXGBE_TOTAL_VFS)  # TotalVFs
        self.pf.sriov.config.write16(
            self.pf.sriov.offset + 0x0C, IXGBE_TOTAL_VFS)  # InitialVFs
        self.pf.sriov.config.write16(
            self.pf.sriov.offset + 0x1A, IXGBE_VF_DEVICE_ID)
