"""Cluster-scope fault injection: the fabric and host-engine faults.

Single-host faults perturb one testbed's internals; cluster faults
perturb what connects testbeds.  Three pieces cooperate:

``split_plan``
    Validates a scenario's fault list against the declared hosts and
    splits it: host-local kinds (``link_flap`` & co.) and the uplink
    flaps go to each :class:`~repro.core.host.Host` (by name, ``host``
    key stripped so the testbed-facing spec is the single-host shape);
    fabric-facing kinds become a :class:`ClusterFaultTimeline`.

``ClusterFaultTimeline``
    The static schedule, as pure time-interval predicates over host
    indexes.  Every fault time is plan data known before the run
    starts, so the ToR's routing stays deterministic arithmetic: the
    same (message, timestamp) pair gets the same verdict whether hosts
    run serially or process-per-host, in any call order.

``HostUplinkFaults``
    The in-host graceful-degradation layer for uplink flaps: each NIC
    port's fabric cable becomes a slave of an active-backup
    :class:`~repro.drivers.bonding.BondingDriver` (primary = the port's
    own cable, standbys = the host's other cables — the PR 3 MII-monitor
    path at cluster scope).  When a cable is pulled the bond fails
    egress over to a standby; frames caught with no carrier anywhere
    queue for retransmit when TCP (flushed when a slave returns) and
    drop-and-count when UDP.  Everything is scheduled on the host's own
    engine at plan times, so the per-host replay is deterministic by
    construction.

Conservation: every frame a guest offers ends in exactly one bucket —
delivered, a local drop, a host uplink drop (``uplink_tx_dropped`` /
still-queued ``uplink_retransmit_pending``), or one of the ToR's
``forwarded`` / ``dropped`` / ``unknown_dst`` / ``drained`` counters —
which is what lets :func:`repro.audit.check_fabric_conservation` hold
under every fault.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.drivers.bonding import BondingDriver, SlaveDevice
from repro.faults.plan import (
    CLUSTER_FAULT_KINDS,
    FaultPlan,
    FaultSpecError,
)
from repro.net.packet import Packet, Protocol

INF = float("inf")

#: MII-monitor interval for the uplink bonds: 1 ms, not Linux's default
#: 100 ms — a ToR-scale failover detection budget (fast miimon), and
#: short enough that a flap inside a measurement window is observed.
UPLINK_MIIMON_INTERVAL = 1e-3

#: Bound on frames parked for retransmit while no cable has carrier
#: (a socket buffer's worth); beyond it TCP frames drop and count too.
RETRANSMIT_QUEUE_FRAMES = 1024


def _intersect(a: List[Tuple[float, float]],
               b: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Intersection of two sorted, disjoint interval lists."""
    out: List[Tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if start < end:
            out.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _down_intervals(events: List[Tuple[float, bool]]) -> List[Tuple[float, float]]:
    """Carrier-down intervals from a (time, down?) event list.

    A redundant event (down while down, up while up) is a no-op, same
    as a real PHY.  A final down with no matching up stays open to INF.
    """
    events.sort(key=lambda e: (e[0], not e[1]))
    intervals: List[Tuple[float, float]] = []
    down_since: Optional[float] = None
    for time, down in events:
        if down and down_since is None:
            down_since = time
        elif not down and down_since is not None:
            if time > down_since:
                intervals.append((down_since, time))
            down_since = None
    if down_since is not None:
        intervals.append((down_since, INF))
    return intervals


class ClusterFaultTimeline:
    """Static time-interval predicates the ToR consults while routing.

    All methods take host *indexes* (what fabric messages carry) and a
    timestamp; intervals are half-open ``[start, end)``.
    """

    def __init__(self, host_count: int):
        self.host_count = host_count
        #: Per host: intervals during which the host is silent (paused
        #: or crashed) — its fabric egress and ingress drain at the ToR.
        self._silence: Dict[int, List[Tuple[float, float]]] = {}
        #: Host index -> crash time (the coordinator caps the engine).
        self.crash_at: Dict[int, float] = {}
        #: (start, end, {host index -> group id}) per partition.
        self._partitions: List[Tuple[float, float, Dict[int, int]]] = []
        #: Per host: (start, end, rate factor, latency factor).
        self._degrades: Dict[int, List[Tuple[float, float, float, float]]] = {}
        #: Per host: intervals during which *every* cable is down, so
        #: the ToR's egress toward it black-holes.
        self._unreachable: Dict[int, List[Tuple[float, float]]] = {}

    # -- construction (split_plan) -------------------------------------
    def add_silence(self, host: int, start: float, end: float) -> None:
        self._silence.setdefault(host, []).append((start, end))

    def add_partition(self, start: float, end: float,
                      groups: Dict[int, int]) -> None:
        self._partitions.append((start, end, groups))

    def add_degrade(self, host: int, start: float, end: float,
                    rate_factor: float, latency_factor: float) -> None:
        self._degrades.setdefault(host, []).append(
            (start, end, rate_factor, latency_factor))

    def set_unreachable(self, host: int,
                        intervals: List[Tuple[float, float]]) -> None:
        if intervals:
            self._unreachable[host] = intervals

    # -- predicates the ToR calls --------------------------------------
    def silenced(self, host: Optional[int], t: float) -> bool:
        if host is None:
            return False
        for start, end in self._silence.get(host, ()):
            if start <= t < end:
                return True
        return False

    def partitioned(self, src: Optional[int], dst: int, t: float) -> bool:
        if src is None or src == dst:
            return False
        for start, end, groups in self._partitions:
            if start <= t < end:
                src_group = groups.get(src)
                dst_group = groups.get(dst)
                if (src_group is not None and dst_group is not None
                        and src_group != dst_group):
                    return True
        return False

    def unreachable(self, host: int, t: float) -> bool:
        for start, end in self._unreachable.get(host, ()):
            if start <= t < end:
                return True
        return False

    def _host_factors(self, host: Optional[int],
                      t: float) -> Tuple[float, float]:
        rate = latency = 1.0
        if host is None:
            return rate, latency
        for start, end, rate_f, latency_f in self._degrades.get(host, ()):
            if start <= t < end:
                rate *= rate_f
                latency *= latency_f
        return rate, latency

    def rate_factor(self, src: Optional[int], dst: int, t: float) -> float:
        return max(self._host_factors(src, t)[0],
                   self._host_factors(dst, t)[0])

    def latency_factor(self, src: Optional[int], dst: int,
                       t: float) -> float:
        return max(self._host_factors(src, t)[1],
                   self._host_factors(dst, t)[1])

    def __bool__(self) -> bool:
        return bool(self._silence or self._partitions or self._degrades
                    or self._unreachable)


class ClusterFaultPlan:
    """A scenario fault list split by scope: per-host spec lists for
    the Host constructors, plus the fabric timeline for the ToR."""

    def __init__(self, timeline: ClusterFaultTimeline,
                 by_host: Dict[str, List[Dict[str, object]]]):
        self.timeline = timeline
        self._by_host = by_host

    def for_host(self, name: str) -> List[Dict[str, object]]:
        """The host-scoped specs for ``name`` (``host`` key stripped —
        the single-host shape the testbed injector and the uplink layer
        consume).  Empty list when the host is fault-free."""
        return self._by_host.get(name, [])


def split_plan(faults: Sequence[Mapping],
               host_specs: Sequence) -> ClusterFaultPlan:
    """Validate and split a cluster scenario's fault list.

    ``host_specs`` is the scenario's built
    :class:`~repro.core.host.HostSpec` list, in host-index order; every
    ``host=`` reference must name one of them.
    """
    names = {spec.name: index for index, spec in enumerate(host_specs)}
    ports_by_host = {spec.name: spec.ports for spec in host_specs}
    timeline = ClusterFaultTimeline(len(host_specs))
    by_host: Dict[str, List[Dict[str, object]]] = {}
    uplink_events: Dict[Tuple[str, int], List[Tuple[float, bool]]] = {}
    for spec in FaultPlan.from_specs(faults):
        kind = spec["kind"]
        if kind == "migration_degrade":
            raise FaultSpecError(
                "migration_degrade targets the single-host migration "
                "harness; cluster scenarios have no migration link")
        if kind == "fabric_partition":
            groups: Dict[int, int] = {}
            for group_id, group in enumerate(spec["groups"]):
                for name in group:
                    if name not in names:
                        raise FaultSpecError(
                            f"fabric_partition groups name host {name!r} "
                            f"but the scenario declares "
                            f"{sorted(names)}")
                    groups[names[name]] = group_id
            at = float(spec["at"])
            timeline.add_partition(at, at + float(spec["duration"]), groups)
            continue
        host = spec.get("host")
        if host is None:
            raise FaultSpecError(
                f"cluster-mode fault {kind!r} needs host=<name> "
                f"(one of {sorted(names)})")
        if host not in names:
            raise FaultSpecError(
                f"fault {kind!r} targets host {host!r} but the "
                f"scenario declares {sorted(names)}")
        index = names[host]
        at = float(spec["at"])
        if kind == "host_crash":
            timeline.add_silence(index, at, INF)
            crash = timeline.crash_at.get(index)
            if crash is None or at < crash:
                timeline.crash_at[index] = at
        elif kind == "host_pause":
            timeline.add_silence(index, at, at + float(spec["duration"]))
        elif kind == "uplink_degrade":
            timeline.add_degrade(index, at, at + float(spec["duration"]),
                                 float(spec["rate_factor"]),
                                 float(spec["latency_factor"]))
        elif kind in ("uplink_down", "uplink_up"):
            port = int(spec["port"])
            if port >= ports_by_host[host]:
                raise FaultSpecError(
                    f"{kind} targets port {port} but host {host!r} has "
                    f"{ports_by_host[host]} port(s)")
            events = uplink_events.setdefault((host, port), [])
            if kind == "uplink_down":
                events.append((at, True))
                if spec["duration"] is not None:
                    events.append((at + float(spec["duration"]), False))
            else:
                events.append((at, False))
            stripped = dict(spec)
            stripped.pop("host", None)
            by_host.setdefault(host, []).append(stripped)
            continue
        else:
            # Host-local kind riding a cluster plan: the host's own
            # testbed injector arms it, exactly as single-host mode.
            stripped = dict(spec)
            stripped.pop("host", None)
            by_host.setdefault(host, []).append(stripped)
            continue
    # A host is fabric-unreachable only while every one of its cables
    # is down at once — the intersection across its ports.
    for name, index in names.items():
        port_intervals = []
        for port in range(ports_by_host[name]):
            events = uplink_events.get((name, port))
            port_intervals.append(_down_intervals(list(events))
                                  if events else [])
        unreachable = port_intervals[0]
        for intervals in port_intervals[1:]:
            unreachable = _intersect(unreachable, intervals)
        timeline.set_unreachable(index, unreachable)
    return ClusterFaultPlan(timeline, by_host)


class UplinkSlave(SlaveDevice):
    """One fabric cable as a bond slave."""

    def __init__(self, name: str, link):
        self._name = name
        self.link = link

    @property
    def slave_name(self) -> str:
        return self._name

    @property
    def carrier(self) -> bool:
        return self.link.up

    def transmit(self, burst: List[Packet]) -> int:
        sent = 0
        for packet in burst:
            if self.link.transmit(packet):
                sent += 1
        return sent


class BondedUplink:
    """What a faulted host's NIC port sees as its uplink: transmit goes
    through the port's bond; everything else proxies the real cable (so
    counters and rate reads keep working)."""

    def __init__(self, layer: "HostUplinkFaults", port_index: int,
                 bond: BondingDriver, link):
        self._layer = layer
        self._port_index = port_index
        self._bond = bond
        self._link = link

    def transmit(self, packet: Packet) -> bool:
        if self._bond.transmit([packet]) == 1:
            return True
        return self._layer._tx_failed(self._port_index, packet)

    def __getattr__(self, name):
        return getattr(self._link, name)


class HostUplinkFaults:
    """The graceful-degradation layer for uplink flaps on one host.

    Built only when the host's plan contains uplink faults, so
    fault-free hosts keep the direct ``port -> Link`` path (and their
    byte-identical results) untouched.
    """

    def __init__(self, sim, host_name: str, ports,
                 specs: Sequence[Mapping]):
        self.sim = sim
        self.host_name = host_name
        self.links = [port.uplink for port in ports]
        self.bonds: List[BondingDriver] = []
        self.uplink_events = 0
        self.uplink_tx_dropped = 0
        self.uplink_retransmits = 0
        self._retransmit: Deque[Tuple[int, Packet]] = deque()
        self._flush_pending = False
        for index, port in enumerate(ports):
            bond = BondingDriver(sim, name=f"{host_name}.uplink-bond{index}")
            # The port's own cable first: it auto-activates on enslave,
            # so the bond starts exactly where the unfaulted path was.
            bond.enslave(UplinkSlave(f"uplink{index}", self.links[index]))
            for other, link in enumerate(self.links):
                if other != index:
                    bond.enslave(UplinkSlave(f"uplink{other}", link))
            bond.primary = f"uplink{index}"
            bond.start_miimon(UPLINK_MIIMON_INTERVAL)
            self.bonds.append(bond)
            port.attach_uplink(
                BondedUplink(self, index, bond, self.links[index]))
        for spec in specs:
            at = float(spec["at"])
            port_index = int(spec["port"])
            if port_index >= len(self.links):
                raise ValueError(
                    f"{spec['kind']} targets port {port_index} but host "
                    f"{host_name!r} has {len(self.links)} port(s)")
            if spec["kind"] == "uplink_down":
                sim.schedule_at(at, self._set_carrier, port_index, False)
                if spec["duration"] is not None:
                    sim.schedule_at(at + float(spec["duration"]),
                                    self._set_carrier, port_index, True)
            else:  # uplink_up
                sim.schedule_at(at, self._set_carrier, port_index, True)

    # -- the cable events ----------------------------------------------
    def _set_carrier(self, port_index: int, up: bool) -> None:
        self.uplink_events += 1
        self.links[port_index].set_carrier(up)
        # Carrier transitions are *detected* by each bond's MII monitor
        # (or inline on the next transmit) — the realistic detection
        # latency is the degradation window the retransmit queue rides.
        if up:
            self._kick_flush()

    # -- graceful degradation ------------------------------------------
    def _tx_failed(self, port_index: int, packet: Packet) -> bool:
        """No slave of this port's bond accepted the frame."""
        if (packet.protocol is Protocol.TCP
                and len(self._retransmit) < RETRANSMIT_QUEUE_FRAMES):
            self._retransmit.append((port_index, packet))
            self._kick_flush()
            return True
        self.uplink_tx_dropped += 1
        return False

    def _kick_flush(self) -> None:
        if self._retransmit and not self._flush_pending:
            self._flush_pending = True
            self.sim.schedule(UPLINK_MIIMON_INTERVAL, self._flush)

    def _flush(self) -> None:
        self._flush_pending = False
        while self._retransmit:
            port_index, packet = self._retransmit[0]
            if self.bonds[port_index].transmit([packet]) == 1:
                self._retransmit.popleft()
                self.uplink_retransmits += 1
            else:
                break
        self._kick_flush()

    # -- observability --------------------------------------------------
    def failover_count(self) -> int:
        """Activation changes after the initial enslave."""
        return sum(1 for bond in self.bonds for record in bond.failovers
                   if record.from_slave is not None)

    def summary(self) -> Dict[str, int]:
        return {
            "uplink_events": self.uplink_events,
            "uplink_failovers": self.failover_count(),
            "uplink_tx_dropped": self.uplink_tx_dropped,
            "uplink_retransmits": self.uplink_retransmits,
            "uplink_retransmit_pending": len(self._retransmit),
        }


__all__ = [
    "CLUSTER_FAULT_KINDS",
    "ClusterFaultPlan",
    "ClusterFaultTimeline",
    "HostUplinkFaults",
    "RETRANSMIT_QUEUE_FRAMES",
    "UPLINK_MIIMON_INTERVAL",
    "split_plan",
]
