"""Deterministic, seed-driven fault injection.

The robustness counterpart of the paper's §4.4 failover story: a
:class:`FaultPlan` of declarative specs (link flap, mailbox message
loss, DMA/descriptor corruption, interrupt delay, migration-link
degradation) that a :class:`FaultInjector` schedules onto a testbed's
simulator.  See :mod:`repro.faults.plan` for the spec vocabulary and
``docs/faults.md`` for the guarantees.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_FIELDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpecError,
    validate_spec,
)

__all__ = [
    "FAULT_FIELDS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "validate_spec",
]
