"""Deterministic, seed-driven fault injection.

The robustness counterpart of the paper's §4.4 failover story: a
:class:`FaultPlan` of declarative specs (link flap, mailbox message
loss, DMA/descriptor corruption, interrupt delay, migration-link
degradation — plus the cluster-scope host crash/pause, uplink flap,
fabric partition and uplink degrade kinds) that a
:class:`FaultInjector` schedules onto a testbed's simulator or
:mod:`repro.faults.cluster` splits across a cluster run.  See
:mod:`repro.faults.plan` for the spec vocabulary and ``docs/faults.md``
for the guarantees.
"""

from repro.faults.cluster import (
    ClusterFaultPlan,
    ClusterFaultTimeline,
    HostUplinkFaults,
    split_plan,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CLUSTER_FAULT_KINDS,
    FAULT_FIELDS,
    FAULT_KINDS,
    HOST_LOCAL_FAULT_KINDS,
    FaultPlan,
    FaultSpecError,
    validate_spec,
)

__all__ = [
    "CLUSTER_FAULT_KINDS",
    "FAULT_FIELDS",
    "FAULT_KINDS",
    "HOST_LOCAL_FAULT_KINDS",
    "ClusterFaultPlan",
    "ClusterFaultTimeline",
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "HostUplinkFaults",
    "split_plan",
    "validate_spec",
]
