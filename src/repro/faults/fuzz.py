"""Seeded fault-fuzzing: random plans as a conservation-violation hunter.

``repro faults --fuzz N --seed S`` generates N random scenarios — a mix
of single-host and cluster topologies, each carrying a random (but
always *valid*) fault plan — and runs them through the supervised
campaign engine with the invariant auditor armed.  The auditor's
conservation laws (packet pool, NIC flow, descriptor rings, and the
fabric identity ``offered == forwarded + dropped + unknown_dst +
drained``) are the property under test: any violation surfaces as a
deterministic, never-retried task failure carrying the scenario dict
and seed needed to replay it.

Generation is a pure function of ``(count, seed)`` — same arguments,
same scenarios, byte for byte — so a violation found by an overnight
fuzz run reproduces from its seed alone.
"""

from __future__ import annotations

import random
from typing import List

from repro.api import Scenario

#: Kept short: the fuzzer's value is plan diversity, not long windows.
FUZZ_WARMUP = 0.04
FUZZ_DURATION = 0.08


def _single_host_faults(rng: random.Random, ports: int,
                        vfs_per_port: int) -> List[dict]:
    horizon = FUZZ_WARMUP + FUZZ_DURATION
    faults = []
    for _ in range(rng.randint(1, 3)):
        at = round(rng.uniform(0.0, horizon), 4)
        duration = round(rng.uniform(0.005, 0.06), 4)
        kind = rng.choice(["link_flap", "mailbox_loss", "dma_corruption",
                           "interrupt_delay"])
        if kind == "link_flap":
            faults.append({"kind": kind, "at": at, "duration": duration,
                           "port": rng.randrange(ports)})
        elif kind == "mailbox_loss":
            vf = (None if rng.random() < 0.5
                  else rng.randrange(vfs_per_port))
            faults.append({"kind": kind, "at": at, "duration": duration,
                           "port": rng.randrange(ports), "vf": vf,
                           "probability": round(rng.uniform(0.2, 1.0), 3)})
        elif kind == "dma_corruption":
            faults.append({"kind": kind, "at": at,
                           "count": rng.randint(1, 32),
                           "port": rng.randrange(ports)})
        else:
            faults.append({"kind": kind, "at": at, "duration": duration,
                           "delay": round(rng.uniform(20e-6, 500e-6), 7)})
    return faults


def _cluster_faults(rng: random.Random, hosts: List[dict]) -> List[dict]:
    horizon = FUZZ_WARMUP + FUZZ_DURATION
    names = [h["name"] for h in hosts]
    ports = {h["name"]: h["ports"] for h in hosts}
    faults = []
    crashed = False
    for _ in range(rng.randint(1, 3)):
        at = round(rng.uniform(0.0, horizon), 4)
        duration = round(rng.uniform(0.005, 0.05), 4)
        host = rng.choice(names)
        kind = rng.choice(["host_pause", "uplink_down", "uplink_degrade",
                           "fabric_partition", "host_crash", "link_flap"])
        if kind == "host_crash":
            if crashed:
                continue  # one engine freeze per plan is plenty
            crashed = True
            faults.append({"kind": kind, "at": at, "host": host})
        elif kind == "host_pause":
            faults.append({"kind": kind, "at": at, "duration": duration,
                           "host": host})
        elif kind == "uplink_down":
            faults.append({"kind": kind, "at": at,
                           "duration": (None if rng.random() < 0.25
                                        else duration),
                           "host": host,
                           "port": rng.randrange(ports[host])})
        elif kind == "uplink_degrade":
            faults.append({"kind": kind, "at": at, "duration": duration,
                           "host": host,
                           "rate_factor": round(rng.uniform(1.5, 40.0), 2),
                           "latency_factor": round(rng.uniform(1.0, 20.0),
                                                   2)})
        elif kind == "fabric_partition":
            cut = rng.randint(1, len(names) - 1)
            shuffled = list(names)
            rng.shuffle(shuffled)
            faults.append({"kind": kind, "at": at, "duration": duration,
                           "groups": [shuffled[:cut], shuffled[cut:]]})
        else:  # link_flap riding the cluster plan (host-local kind)
            faults.append({"kind": kind, "at": at, "duration": duration,
                           "host": host,
                           "port": rng.randrange(ports[host])})
    return faults


def generate_fuzz_scenarios(count: int, seed: int) -> List[Scenario]:
    """``count`` random faulted scenarios, deterministic in ``seed``."""
    if count < 1:
        raise ValueError("fuzz count must be >= 1")
    rng = random.Random(seed)
    scenarios: List[Scenario] = []
    while len(scenarios) < count:
        run_seed = rng.randrange(1 << 16)
        if rng.random() < 0.4:
            ports = rng.randint(1, 2)
            vfs = 7
            vm_count = rng.randint(1, 2 * ports)
            scenarios.append(Scenario(
                mode="sriov", vm_count=vm_count, ports=ports,
                vfs_per_port=vfs, protocol=rng.choice(["udp", "tcp"]),
                warmup=FUZZ_WARMUP, duration=FUZZ_DURATION, seed=run_seed,
                faults=_single_host_faults(rng, ports, vfs)))
        else:
            host_count = rng.randint(2, 3)
            hosts = [{"name": f"h{i}", "vm_count": rng.randint(1, 2),
                      "ports": rng.randint(1, 2)}
                     for i in range(host_count)]
            flows = []
            for i, host in enumerate(hosts):
                dst = hosts[(i + 1) % host_count]
                flows.append({"src_host": host["name"],
                              "dst_host": dst["name"],
                              "protocol": rng.choice(["udp", "tcp"]),
                              "offered_bps": rng.choice([200e6, 400e6,
                                                         800e6])})
            scenarios.append(Scenario(
                mode="cluster", hosts=hosts, flows=flows,
                warmup=FUZZ_WARMUP, duration=FUZZ_DURATION, seed=run_seed,
                faults=_cluster_faults(rng, hosts)))
    return scenarios


def violation_outcomes(outcomes) -> List:
    """The outcomes whose task failed on an invariant violation (the
    fuzzer's actual findings, as opposed to infrastructure failures)."""
    found = []
    for outcome in outcomes:
        task = outcome.task
        if task is not None and task.error \
                and "InvariantViolation" in task.error:
            found.append(outcome)
    return found
