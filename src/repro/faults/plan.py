"""Declarative fault specifications.

A fault plan is a list of plain JSON dicts — the same "no live objects"
rule the :class:`~repro.api.Scenario` follows — so plans ride inside
scenarios, pickle into the sweep engine's process pool, and fold into
the result cache's content key (a faulty run can never collide with a
clean one).

Each spec names a ``kind`` plus that kind's parameters:

``link_flap``
    The physical line of one port drops at ``at`` and returns at
    ``at + duration``.  Propagates exactly as §4.2 describes: the PF
    driver broadcasts ``link_change`` over every VF mailbox, the VF
    drivers update their carrier, and the bond's MII monitor reacts.

``mailbox_loss``
    During ``[at, at + duration)`` each doorbell ring on the selected
    mailboxes (one VF, or every VF of a port) is lost with
    ``probability``.  The message stays latched — the sender-side
    retrier re-rings the doorbell after a timeout.

``dma_corruption``
    The next ``count`` RX DMA writes on a port land with a bad
    checksum; the function drops each frame and counts it, as a real
    driver does on an error-status descriptor.

``interrupt_delay``
    During ``[at, at + duration)`` every MSI from the testbed's ports
    is delivered ``delay`` seconds late.

``migration_degrade``
    The migration link's bandwidth is divided by ``factor`` (a
    congested or rate-limited migration network).  Not scheduled — it
    parameterizes the pre-copy model directly.

Cluster-scope kinds (``mode="cluster"`` scenarios only; see
:mod:`repro.faults.cluster` and docs/faults.md for the full matrix):

``host_crash``
    Host ``host``'s engine stops advancing at ``at`` and never
    resumes.  Peers observe silence: frames in flight toward it drain
    at the fabric (counted, never delivered), new frames to its MACs
    drain too, and its own measurement window ends at the crash.

``host_pause``
    Like a firmware stall or VM suspend: during ``[at, at+duration)``
    the host is isolated — its fabric egress and ingress both drain at
    the ToR — then traffic resumes.  Local (same-host) flows continue.

``uplink_down`` / ``uplink_up``
    The fabric-side cable of one host NIC port flaps.  The host's
    active-backup uplink bond (MII-monitored) fails egress over to a
    standby cable; TCP frames caught without any carrier queue for
    retransmit, UDP frames drop and count.  A ``duration``-less
    ``uplink_down`` stays down until a matching ``uplink_up``.  When
    *every* cable of a host is down the ToR counts frames to it as
    unreachable drops.

``fabric_partition``
    During ``[at, at+duration)`` the ToR drops frames between hosts in
    different ``groups`` (a list of host-name lists); frames within a
    group still forward.

``uplink_degrade``
    During ``[at, at+duration)`` frames to or from ``host`` see the
    fabric serialization slowed by ``rate_factor`` and the fabric
    latency multiplied by ``latency_factor``.

Every kind except ``migration_degrade`` and ``fabric_partition`` takes
an optional ``host=`` naming the cluster host it targets (required in
cluster mode, forbidden in single-host mode; validated against the
scenario's declared host names).

Validation normalizes every spec: defaults are filled in, so two plans
with the same meaning serialize to the same canonical JSON.  A ``host``
of None is *omitted* from the normalized form, so single-host plans
keep the exact canonical JSON (and cache keys) they always had.
"""

from __future__ import annotations

import difflib
from typing import Dict, Iterable, Iterator, List, Mapping, Optional


class FaultSpecError(ValueError):
    """A fault spec failed validation."""


#: kind -> {field: (default, validator)}.  ``REQUIRED`` marks fields
#: with no default.
REQUIRED = object()


def _non_negative(value: object, field: str) -> float:
    number = float(value)
    if number < 0:
        raise FaultSpecError(f"{field} must be >= 0, not {value!r}")
    return number


def _positive(value: object, field: str) -> float:
    number = float(value)
    if number <= 0:
        raise FaultSpecError(f"{field} must be > 0, not {value!r}")
    return number


def _port(value: object, field: str) -> int:
    number = int(value)
    if number < 0:
        raise FaultSpecError(f"{field} must be a port index >= 0, "
                             f"not {value!r}")
    return number


def _vf(value: object, field: str) -> Optional[int]:
    if value is None:
        return None
    number = int(value)
    if number < 0:
        raise FaultSpecError(f"{field} must be a VF index >= 0 or null "
                             f"(= every VF), not {value!r}")
    return number


def _probability(value: object, field: str) -> float:
    number = float(value)
    if not 0.0 < number <= 1.0:
        raise FaultSpecError(f"{field} must be in (0, 1], not {value!r}")
    return number


def _count(value: object, field: str) -> int:
    number = int(value)
    if number <= 0:
        raise FaultSpecError(f"{field} must be a positive count, "
                             f"not {value!r}")
    return number


def _factor(value: object, field: str) -> float:
    number = float(value)
    if number < 1.0:
        raise FaultSpecError(f"{field} must be >= 1.0 (a slowdown), "
                             f"not {value!r}")
    return number


def _host(value: object, field: str) -> str:
    if not isinstance(value, str) or not value:
        raise FaultSpecError(f"{field} must be a host name, "
                             f"not {value!r}")
    return value


def _opt_host(value: object, field: str) -> Optional[str]:
    if value is None:
        return None
    return _host(value, field)


def _opt_duration(value: object, field: str) -> Optional[float]:
    if value is None:
        return None
    return _positive(value, field)


def _groups(value: object, field: str) -> List[List[str]]:
    if not isinstance(value, (list, tuple)) or len(value) < 2:
        raise FaultSpecError(f"{field} must be a list of at least two "
                             f"host-name groups, not {value!r}")
    seen: set = set()
    groups: List[List[str]] = []
    for group in value:
        if not isinstance(group, (list, tuple)) or not group:
            raise FaultSpecError(f"{field} groups must be non-empty "
                                 f"lists of host names, not {group!r}")
        names = sorted(_host(name, field) for name in group)
        for name in names:
            if name in seen:
                raise FaultSpecError(f"{field} lists host {name!r} in "
                                     f"more than one group")
            seen.add(name)
        groups.append(names)
    groups.sort()
    return groups


FAULT_FIELDS: Dict[str, Dict[str, tuple]] = {
    "link_flap": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "port": (0, _port),
        "host": (None, _opt_host),
    },
    "mailbox_loss": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "port": (0, _port),
        "vf": (None, _vf),
        "probability": (1.0, _probability),
        "host": (None, _opt_host),
    },
    "dma_corruption": {
        "at": (REQUIRED, _non_negative),
        "count": (1, _count),
        "port": (0, _port),
        "host": (None, _opt_host),
    },
    "interrupt_delay": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "delay": (100e-6, _positive),
        "host": (None, _opt_host),
    },
    "migration_degrade": {
        "factor": (2.0, _factor),
    },
    "host_crash": {
        "at": (REQUIRED, _non_negative),
        "host": (REQUIRED, _host),
    },
    "host_pause": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "host": (REQUIRED, _host),
    },
    "uplink_down": {
        "at": (REQUIRED, _non_negative),
        "duration": (None, _opt_duration),
        "port": (0, _port),
        "host": (REQUIRED, _host),
    },
    "uplink_up": {
        "at": (REQUIRED, _non_negative),
        "port": (0, _port),
        "host": (REQUIRED, _host),
    },
    "fabric_partition": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "groups": (REQUIRED, _groups),
    },
    "uplink_degrade": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "rate_factor": (2.0, _factor),
        "latency_factor": (1.0, _factor),
        "host": (REQUIRED, _host),
    },
}

FAULT_KINDS = tuple(FAULT_FIELDS)

#: Kinds a single testbed's :class:`~repro.faults.injector.FaultInjector`
#: arms (plus ``migration_degrade``, which reshapes the pre-copy model).
HOST_LOCAL_FAULT_KINDS = frozenset(
    {"link_flap", "mailbox_loss", "dma_corruption", "interrupt_delay"})

#: Kinds that only make sense under a cluster coordinator: they act on
#: the fabric, the uplink bond layer, or a whole host engine.
CLUSTER_FAULT_KINDS = frozenset(
    {"host_crash", "host_pause", "uplink_down", "uplink_up",
     "fabric_partition", "uplink_degrade"})


def _hint(name: object, known: Iterable[str]) -> str:
    """A ``(did you mean ...?)`` suffix when a close match exists —
    same style as :meth:`Scenario.from_dict`."""
    match = difflib.get_close_matches(str(name), list(known), n=1)
    return f" (did you mean {match[0]!r}?)" if match else ""


def validate_spec(spec: Mapping[str, object]) -> Dict[str, object]:
    """One normalized fault spec: kind checked, defaults filled,
    values coerced; unknown keys are an error (a typo'd parameter
    must not silently no-op)."""
    if not isinstance(spec, Mapping):
        raise FaultSpecError(f"fault spec must be a mapping, "
                             f"not {type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in FAULT_FIELDS:
        raise FaultSpecError(f"unknown fault kind {kind!r}: use one of "
                             f"{', '.join(FAULT_KINDS)}"
                             f"{_hint(kind, FAULT_KINDS)}")
    fields = FAULT_FIELDS[kind]
    unknown = set(spec) - set(fields) - {"kind"}
    if unknown:
        hints = "".join(_hint(name, fields) for name in sorted(unknown))
        raise FaultSpecError(f"unknown {kind} fields: {sorted(unknown)} "
                             f"(known: {sorted(fields)}){hints}")
    normalized: Dict[str, object] = {"kind": kind}
    for field, (default, coerce) in fields.items():
        if field in spec:
            normalized[field] = coerce(spec[field], f"{kind}.{field}")
        elif default is REQUIRED:
            raise FaultSpecError(f"{kind} requires {field!r}")
        else:
            normalized[field] = default
    # Single-host plans never say host=, and their canonical JSON (and
    # therefore every cached result key) must not grow a key for it.
    if normalized.get("host", REQUIRED) is None:
        del normalized["host"]
    return normalized


class FaultPlan:
    """An ordered, validated list of fault specs."""

    def __init__(self, specs: Iterable[Mapping[str, object]] = ()):
        self.specs: List[Dict[str, object]] = [validate_spec(s)
                                               for s in specs]

    @classmethod
    def from_specs(cls, specs: Iterable[Mapping[str, object]]) -> "FaultPlan":
        return cls(specs)

    def to_list(self) -> List[Dict[str, object]]:
        """The canonical JSON-able form (normalized spec dicts)."""
        return [dict(spec) for spec in self.specs]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def migration_degrade_factor(self) -> float:
        """The combined migration-link slowdown (1.0 = no degradation)."""
        factor = 1.0
        for spec in self.specs:
            if spec["kind"] == "migration_degrade":
                factor *= float(spec["factor"])
        return factor

    def scheduled_specs(self) -> List[Dict[str, object]]:
        """The specs the injector schedules on the simulator (everything
        except ``migration_degrade``, which reshapes the pre-copy model
        instead of firing at a time)."""
        return [spec for spec in self.specs
                if spec["kind"] != "migration_degrade"]
