"""Declarative fault specifications.

A fault plan is a list of plain JSON dicts — the same "no live objects"
rule the :class:`~repro.api.Scenario` follows — so plans ride inside
scenarios, pickle into the sweep engine's process pool, and fold into
the result cache's content key (a faulty run can never collide with a
clean one).

Each spec names a ``kind`` plus that kind's parameters:

``link_flap``
    The physical line of one port drops at ``at`` and returns at
    ``at + duration``.  Propagates exactly as §4.2 describes: the PF
    driver broadcasts ``link_change`` over every VF mailbox, the VF
    drivers update their carrier, and the bond's MII monitor reacts.

``mailbox_loss``
    During ``[at, at + duration)`` each doorbell ring on the selected
    mailboxes (one VF, or every VF of a port) is lost with
    ``probability``.  The message stays latched — the sender-side
    retrier re-rings the doorbell after a timeout.

``dma_corruption``
    The next ``count`` RX DMA writes on a port land with a bad
    checksum; the function drops each frame and counts it, as a real
    driver does on an error-status descriptor.

``interrupt_delay``
    During ``[at, at + duration)`` every MSI from the testbed's ports
    is delivered ``delay`` seconds late.

``migration_degrade``
    The migration link's bandwidth is divided by ``factor`` (a
    congested or rate-limited migration network).  Not scheduled — it
    parameterizes the pre-copy model directly.

Validation normalizes every spec: defaults are filled in, so two plans
with the same meaning serialize to the same canonical JSON.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional


class FaultSpecError(ValueError):
    """A fault spec failed validation."""


#: kind -> {field: (default, validator)}.  ``REQUIRED`` marks fields
#: with no default.
REQUIRED = object()


def _non_negative(value: object, field: str) -> float:
    number = float(value)
    if number < 0:
        raise FaultSpecError(f"{field} must be >= 0, not {value!r}")
    return number


def _positive(value: object, field: str) -> float:
    number = float(value)
    if number <= 0:
        raise FaultSpecError(f"{field} must be > 0, not {value!r}")
    return number


def _port(value: object, field: str) -> int:
    number = int(value)
    if number < 0:
        raise FaultSpecError(f"{field} must be a port index >= 0, "
                             f"not {value!r}")
    return number


def _vf(value: object, field: str) -> Optional[int]:
    if value is None:
        return None
    number = int(value)
    if number < 0:
        raise FaultSpecError(f"{field} must be a VF index >= 0 or null "
                             f"(= every VF), not {value!r}")
    return number


def _probability(value: object, field: str) -> float:
    number = float(value)
    if not 0.0 < number <= 1.0:
        raise FaultSpecError(f"{field} must be in (0, 1], not {value!r}")
    return number


def _count(value: object, field: str) -> int:
    number = int(value)
    if number <= 0:
        raise FaultSpecError(f"{field} must be a positive count, "
                             f"not {value!r}")
    return number


def _factor(value: object, field: str) -> float:
    number = float(value)
    if number < 1.0:
        raise FaultSpecError(f"{field} must be >= 1.0 (a slowdown), "
                             f"not {value!r}")
    return number


FAULT_FIELDS: Dict[str, Dict[str, tuple]] = {
    "link_flap": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "port": (0, _port),
    },
    "mailbox_loss": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "port": (0, _port),
        "vf": (None, _vf),
        "probability": (1.0, _probability),
    },
    "dma_corruption": {
        "at": (REQUIRED, _non_negative),
        "count": (1, _count),
        "port": (0, _port),
    },
    "interrupt_delay": {
        "at": (REQUIRED, _non_negative),
        "duration": (0.5, _positive),
        "delay": (100e-6, _positive),
    },
    "migration_degrade": {
        "factor": (2.0, _factor),
    },
}

FAULT_KINDS = tuple(FAULT_FIELDS)


def validate_spec(spec: Mapping[str, object]) -> Dict[str, object]:
    """One normalized fault spec: kind checked, defaults filled,
    values coerced; unknown keys are an error (a typo'd parameter
    must not silently no-op)."""
    if not isinstance(spec, Mapping):
        raise FaultSpecError(f"fault spec must be a mapping, "
                             f"not {type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in FAULT_FIELDS:
        raise FaultSpecError(f"unknown fault kind {kind!r}: use one of "
                             f"{', '.join(FAULT_KINDS)}")
    fields = FAULT_FIELDS[kind]
    unknown = set(spec) - set(fields) - {"kind"}
    if unknown:
        raise FaultSpecError(f"unknown {kind} fields: {sorted(unknown)} "
                             f"(known: {sorted(fields)})")
    normalized: Dict[str, object] = {"kind": kind}
    for field, (default, coerce) in fields.items():
        if field in spec:
            normalized[field] = coerce(spec[field], f"{kind}.{field}")
        elif default is REQUIRED:
            raise FaultSpecError(f"{kind} requires {field!r}")
        else:
            normalized[field] = default
    return normalized


class FaultPlan:
    """An ordered, validated list of fault specs."""

    def __init__(self, specs: Iterable[Mapping[str, object]] = ()):
        self.specs: List[Dict[str, object]] = [validate_spec(s)
                                               for s in specs]

    @classmethod
    def from_specs(cls, specs: Iterable[Mapping[str, object]]) -> "FaultPlan":
        return cls(specs)

    def to_list(self) -> List[Dict[str, object]]:
        """The canonical JSON-able form (normalized spec dicts)."""
        return [dict(spec) for spec in self.specs]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def migration_degrade_factor(self) -> float:
        """The combined migration-link slowdown (1.0 = no degradation)."""
        factor = 1.0
        for spec in self.specs:
            if spec["kind"] == "migration_degrade":
                factor *= float(spec["factor"])
        return factor

    def scheduled_specs(self) -> List[Dict[str, object]]:
        """The specs the injector schedules on the simulator (everything
        except ``migration_degrade``, which reshapes the pre-copy model
        instead of firing at a time)."""
        return [spec for spec in self.specs
                if spec["kind"] != "migration_degrade"]
