"""The fault injector: schedules a validated plan onto a testbed.

Determinism contract: every injection time comes straight from the
plan, and every random draw (mailbox-loss coin flips) comes from a
named stream forked off the testbed's seeded
:class:`~repro.sim.rand.RandomStreams` — so a (scenario, seed) pair
replays the exact same fault sequence on every run, in-process or in a
sweep pool worker.

Counters are plain attributes (always live, cheap to assert on in
tests) mirrored as gauges under the ``faults.`` scope of the platform
metrics registry, so ``--metrics-json`` shows what was injected.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.plan import CLUSTER_FAULT_KINDS, FaultPlan
from repro.sim.rand import RandomStreams


class FaultInjector:
    """Arms one :class:`FaultPlan` against one testbed."""

    def __init__(self, plan: FaultPlan, streams: RandomStreams):
        self.plan = plan
        self.streams = streams
        self.injected = 0
        self.link_flaps = 0
        self.mailbox_doorbells_dropped = 0
        self.interrupts_delayed = 0
        self._bed = None
        self._installed = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def install(self, bed) -> None:
        """Schedule every spec on ``bed``'s simulator and register the
        ``faults.`` gauges.  Port indices are validated here, against
        the testbed actually built."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        self._bed = bed
        sim = bed.sim
        for index, spec in enumerate(self.plan.scheduled_specs()):
            kind = spec["kind"]
            if kind == "link_flap":
                self._arm_link_flap(sim, bed, spec)
            elif kind == "mailbox_loss":
                self._arm_mailbox_loss(sim, bed, spec, index)
            elif kind == "dma_corruption":
                self._arm_dma_corruption(sim, bed, spec)
            elif kind == "interrupt_delay":
                self._arm_interrupt_delay(sim, bed, spec)
            elif kind in CLUSTER_FAULT_KINDS:
                raise ValueError(
                    f"{kind!r} is a cluster-scope fault: it needs "
                    f"run_cluster (Scenario hosts=...), not a single "
                    f"testbed")
            else:  # pragma: no cover - plan validation forbids this
                raise AssertionError(f"unhandled fault kind {kind!r}")
        self._register_gauges(bed)

    def _port_driver(self, bed, spec):
        port = int(spec["port"])
        if port >= len(bed.pf_drivers):
            raise ValueError(
                f"{spec['kind']} targets port {port} but the testbed has "
                f"{len(bed.pf_drivers)} port(s)")
        return bed.pf_drivers[port]

    # ------------------------------------------------------------------
    # the five injections
    # ------------------------------------------------------------------
    def _arm_link_flap(self, sim, bed, spec) -> None:
        pf = self._port_driver(bed, spec)
        at = float(spec["at"])

        def down() -> None:
            self.injected += 1
            self.link_flaps += 1
            pf.platform.trace.emit("fault", "link_flap",
                                   port=pf.port.index, up=False)
            pf.notify_link_change(False)

        def up() -> None:
            pf.platform.trace.emit("fault", "link_flap",
                                   port=pf.port.index, up=True)
            pf.notify_link_change(True)

        sim.schedule_at(at, down)
        sim.schedule_at(at + float(spec["duration"]), up)

    def _arm_mailbox_loss(self, sim, bed, spec, index: int) -> None:
        pf = self._port_driver(bed, spec)
        port = pf.port
        vf_index = spec["vf"]
        if vf_index is None:
            mailboxes = [vf.mailbox for vf in port.vfs]
        else:
            if int(vf_index) >= len(port.vfs):
                raise ValueError(
                    f"mailbox_loss targets VF {vf_index} but port "
                    f"{port.index} has {len(port.vfs)} VF(s)")
            mailboxes = [port.vf(int(vf_index)).mailbox]
        probability = float(spec["probability"])
        rng = self.streams.get(f"mailbox_loss.{index}")

        def lose(sender: str, message) -> bool:
            if probability < 1.0 and rng.random() >= probability:
                return False
            self.mailbox_doorbells_dropped += 1
            return True

        def arm() -> None:
            self.injected += 1
            for mailbox in mailboxes:
                mailbox.loss_hook = lose

        def disarm() -> None:
            for mailbox in mailboxes:
                if mailbox.loss_hook is lose:
                    mailbox.loss_hook = None

        sim.schedule_at(float(spec["at"]), arm)
        sim.schedule_at(float(spec["at"]) + float(spec["duration"]), disarm)

    def _arm_dma_corruption(self, sim, bed, spec) -> None:
        pf = self._port_driver(bed, spec)
        port = pf.port
        count = int(spec["count"])

        def arm() -> None:
            self.injected += 1
            port.rx_corrupt_budget += count

        sim.schedule_at(float(spec["at"]), arm)

    def _arm_interrupt_delay(self, sim, bed, spec) -> None:
        delay = float(spec["delay"])
        saved: List[Tuple[object, Optional[Callable]]] = []

        def wrap(original: Callable) -> Callable:
            def delayed(function, message) -> None:
                self.interrupts_delayed += 1
                sim.schedule(delay, original, function, message)
            return delayed

        def arm() -> None:
            self.injected += 1
            for port in bed.ports:
                saved.append((port, port.interrupt_sink))
                port.interrupt_sink = wrap(port.interrupt_sink)

        def disarm() -> None:
            for port, original in saved:
                port.interrupt_sink = original
            saved.clear()

        sim.schedule_at(float(spec["at"]), arm)
        sim.schedule_at(float(spec["at"]) + float(spec["duration"]), disarm)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def dma_corrupted(self) -> int:
        if self._bed is None:
            return 0
        return sum(port.rx_corrupted for port in self._bed.ports)

    def mailbox_retries(self) -> int:
        if self._bed is None:
            return 0
        total = sum(pf.mailbox_retries for pf in self._bed.pf_drivers)
        total += sum(guest.driver.pf_retrier.retries
                     for guest in self._bed.sriov_guests)
        return total

    def mailbox_abandoned(self) -> int:
        if self._bed is None:
            return 0
        total = sum(pf.mailbox_abandoned for pf in self._bed.pf_drivers)
        total += sum(guest.driver.pf_retrier.abandoned
                     for guest in self._bed.sriov_guests)
        return total

    def _register_gauges(self, bed) -> None:
        scope = bed.platform.metrics.scope("faults")
        scope.gauge("injected", lambda: self.injected)
        scope.gauge("link_flaps", lambda: self.link_flaps)
        scope.gauge("mailbox_doorbells_dropped",
                    lambda: self.mailbox_doorbells_dropped)
        scope.gauge("mailbox_retries", self.mailbox_retries)
        scope.gauge("mailbox_abandoned", self.mailbox_abandoned)
        scope.gauge("dma_corrupted", self.dma_corrupted)
        scope.gauge("interrupts_delayed", lambda: self.interrupts_delayed)

    def summary(self) -> Dict[str, int]:
        """The fault counters as a plain dict (lands in
        ``RunResult.extras['faults']`` for faulty runs)."""
        return {
            "injected": self.injected,
            "link_flaps": self.link_flaps,
            "mailbox_doorbells_dropped": self.mailbox_doorbells_dropped,
            "mailbox_retries": self.mailbox_retries(),
            "mailbox_abandoned": self.mailbox_abandoned(),
            "dma_corrupted": self.dma_corrupted(),
            "interrupts_delayed": self.interrupts_delayed,
        }
